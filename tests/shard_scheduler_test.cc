// Tests for the chunked work-claiming execution driver (interval/shard.h):
// determinism under adversarial chunkings, early-exit cancellation, and
// load balance on a triangular synthetic workload.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/confidence.h"
#include "interval/generator.h"
#include "interval/shard.h"
#include "tests/test_data.h"

namespace conservation::interval {
namespace {

TEST(ResolveNumChunksTest, ClampsAndCaps) {
  GeneratorOptions options;
  options.chunks_per_thread = 12;
  EXPECT_EQ(ResolveNumChunks(1000, 1, options), 1);  // sequential: no chunking
  EXPECT_EQ(ResolveNumChunks(1000, 4, options), 48);
  EXPECT_EQ(ResolveNumChunks(30, 4, options), 30);  // capped at n
  options.chunks_per_thread = 0;                    // clamped to 1
  EXPECT_EQ(ResolveNumChunks(1000, 4, options), 4);
  options.chunks_per_thread = 1000000;
  EXPECT_EQ(ResolveNumChunks(1000, 4, options), 1000);  // width-1 chunks
}

// Output must be bit-identical to the sequential run for every chunking,
// including the degenerate ones: one chunk per worker, width-1 chunks, and
// prime chunk counts against a prime n.
TEST(ShardSchedulerTest, DeterministicUnderAdversarialChunkSizes) {
  const int64_t n = 997;  // prime: every width leaves a ragged tail
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/11, n);
  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);

  struct Config {
    AlgorithmKind kind;
    core::TableauType type;
  };
  const Config configs[] = {
      {AlgorithmKind::kAreaBased, core::TableauType::kHold},
      {AlgorithmKind::kAreaBased, core::TableauType::kFail},
      {AlgorithmKind::kAreaBasedOpt, core::TableauType::kHold},
      {AlgorithmKind::kNonAreaBasedOpt, core::TableauType::kHold},
  };
  for (const Config& config : configs) {
    GeneratorOptions options;
    options.type = config.type;
    options.c_hat = config.type == core::TableauType::kHold ? 0.7 : 0.4;
    options.epsilon = 0.05;
    const auto generator = MakeGenerator(config.kind);

    options.num_threads = 1;
    const std::vector<Interval> sequential =
        generator->Generate(eval, options, nullptr);

    for (const int threads : {2, 3, 5}) {
      // 1 chunk/worker (static partition), a prime chunk count, and a
      // chunk count >= n (width-1 chunks).
      for (const int chunks_per_thread : {1, 7, 1000}) {
        options.num_threads = threads;
        options.chunks_per_thread = chunks_per_thread;
        GeneratorStats stats;
        const std::vector<Interval> chunked =
            generator->Generate(eval, options, &stats);
        EXPECT_EQ(chunked, sequential)
            << AlgorithmKindName(config.kind) << " type "
            << static_cast<int>(config.type) << " threads " << threads
            << " chunks_per_thread " << chunks_per_thread;
        // The driver re-derives the count from the rounded-up width.
        const int64_t requested = std::min<int64_t>(
            n, static_cast<int64_t>(threads) * chunks_per_thread);
        const int64_t width = (n + requested - 1) / requested;
        EXPECT_EQ(stats.chunks, (n + width - 1) / width);
      }
    }
  }
}

// Direct driver test: chunk outputs must concatenate in anchor order no
// matter which worker ran which chunk.
TEST(ShardSchedulerTest, ConcatenatesChunkOutputsInAnchorOrder) {
  const int64_t n = 500;
  GeneratorOptions options;
  options.num_threads = 4;
  options.chunks_per_thread = 16;
  GeneratorStats stats;
  const std::vector<Interval> out = internal::RunSharded(
      n, options, &stats,
      [](int64_t begin, int64_t end, GeneratorStats* chunk_stats) {
        std::vector<Interval> part;
        for (int64_t i = begin; i <= end; ++i) part.push_back({i, i});
        chunk_stats->intervals_tested =
            static_cast<uint64_t>(end - begin + 1);
        return part;
      });
  ASSERT_EQ(out.size(), static_cast<size_t>(n));
  for (int64_t i = 1; i <= n; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i - 1)], (Interval{i, i}));
  }
  EXPECT_EQ(stats.intervals_tested, static_cast<uint64_t>(n));
  EXPECT_EQ(stats.candidates, static_cast<uint64_t>(n));
  EXPECT_EQ(stats.shards, 4);
  // 64 requested chunks over n=500 -> width 8 -> 63 actual chunks.
  EXPECT_EQ(stats.chunks, 63);
}

// stop_on_full_cover across multiple chunks: the signaling chunk's output
// replaces everything; late chunks are cancelled at claim granularity.
TEST(ShardSchedulerTest, StopOnFullCoverCancelsOtherChunks) {
  const int64_t n = 300;
  GeneratorOptions options;
  options.num_threads = 4;
  options.chunks_per_thread = 8;
  options.stop_on_full_cover = true;
  GeneratorStats stats;
  const std::vector<Interval> out = internal::RunSharded(
      n, options, &stats,
      [n](int64_t begin, int64_t end, GeneratorStats* chunk_stats) {
        std::vector<Interval> part;
        // Mimic the generators: the chunk owning anchor 1 emits the
        // full-span candidate and exits immediately; everyone else sweeps.
        if (begin == 1) {
          chunk_stats->intervals_tested = 1;
          part.push_back({1, n});
          return part;
        }
        chunk_stats->intervals_tested =
            static_cast<uint64_t>(end - begin + 1);
        for (int64_t i = begin; i <= end; ++i) part.push_back({i, i});
        return part;
      });
  EXPECT_EQ(out, (std::vector<Interval>{Interval{1, n}}));
  // Only the signaling chunk's counters survive (sequential equivalence).
  EXPECT_EQ(stats.intervals_tested, 1u);
  EXPECT_EQ(stats.candidates, 1u);
}

// Deterministic triangular busy-work, heavy at low anchors — the skew shape
// of the real generators (anchor i sweeps endpoints up to n).
double SpinTriangular(int64_t units) {
  volatile double acc = 0.0;
  for (int64_t u = 0; u < units; ++u) {
    acc = acc + std::sqrt(static_cast<double>(u + 1));
  }
  return acc;
}

// With fine-grained dynamically claimed chunks, no participating worker's
// work time may dwarf the mean even though the first chunks carry most of
// the work. (The replaced contiguous-block driver measured ~1.9 at 8
// workers on this shape; a chunk-granular bound of 2.5 keeps the test
// robust on loaded or low-core CI machines.)
TEST(ShardSchedulerTest, LoadBalanceBoundedOnTriangularWorkload) {
  const int64_t n = 4000;
  GeneratorOptions options;
  options.num_threads = 4;
  options.chunks_per_thread = 12;
  GeneratorStats stats;
  internal::RunSharded(
      n, options, &stats,
      [n](int64_t begin, int64_t end, GeneratorStats* chunk_stats) {
        uint64_t units = 0;
        for (int64_t i = begin; i <= end; ++i) {
          const int64_t cost = (n - i) / 2 + 1;
          SpinTriangular(cost);
          units += static_cast<uint64_t>(cost);
        }
        chunk_stats->endpoint_steps = units;
        return std::vector<Interval>{};
      });

  EXPECT_EQ(stats.shards, 4);
  EXPECT_EQ(stats.chunks, 48);
  ASSERT_EQ(stats.shard_work.size(), 4u);
  uint64_t claimed = 0;
  const uint64_t fair_share = 48 / 4;
  for (const ShardWork& work : stats.shard_work) {
    claimed += work.chunks_claimed;
    const uint64_t expected_steals =
        work.chunks_claimed > fair_share ? work.chunks_claimed - fair_share
                                         : 0;
    EXPECT_EQ(work.steals, expected_steals);
  }
  EXPECT_EQ(claimed, 48u);
  EXPECT_LE(stats.ImbalanceRatio(), 2.5);
  EXPECT_GE(stats.MaxShardSeconds(), stats.MedianShardSeconds());
  EXPECT_GE(stats.MedianShardSeconds(), stats.MinShardSeconds());
  // Work time sums across workers into seconds; the driver's wall time
  // covers at least the longest worker.
  EXPECT_GE(stats.wall_seconds, stats.MaxShardSeconds() * 0.99);
}

}  // namespace
}  // namespace conservation::interval
