#include <gtest/gtest.h>

#include "core/confidence.h"
#include "interval/generator.h"
#include "interval/interval.h"
#include "interval/non_area_based.h"
#include "tests/test_data.h"

namespace conservation::interval {
namespace {

TEST(IntervalTest, LengthAndContains) {
  const Interval iv{3, 7};
  EXPECT_EQ(iv.length(), 5);
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(2));
  EXPECT_FALSE(iv.Contains(8));
  EXPECT_TRUE(iv.Contains(Interval{4, 6}));
  EXPECT_TRUE(iv.Contains(Interval{3, 7}));
  EXPECT_FALSE(iv.Contains(Interval{2, 6}));
}

TEST(IntervalTest, Overlaps) {
  const Interval iv{3, 7};
  EXPECT_TRUE(iv.Overlaps(Interval{7, 9}));
  EXPECT_TRUE(iv.Overlaps(Interval{1, 3}));
  EXPECT_FALSE(iv.Overlaps(Interval{8, 9}));
  EXPECT_FALSE(iv.Overlaps(Interval{1, 2}));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ((Interval{1, 10}.ToString()), "[1, 10]");
}

TEST(IntervalTest, ByPosition) {
  EXPECT_TRUE(ByPosition(Interval{1, 5}, Interval{2, 3}));
  EXPECT_TRUE(ByPosition(Interval{1, 3}, Interval{1, 5}));
  EXPECT_FALSE(ByPosition(Interval{1, 5}, Interval{1, 5}));
}

TEST(IntervalTest, UnionSizeDisjoint) {
  EXPECT_EQ(UnionSize({{1, 3}, {5, 6}}), 5);
}

TEST(IntervalTest, UnionSizeOverlapping) {
  EXPECT_EQ(UnionSize({{1, 5}, {3, 8}, {8, 9}}), 9);
}

TEST(IntervalTest, UnionSizeAdjacentMerges) {
  EXPECT_EQ(UnionSize({{1, 3}, {4, 6}}), 6);
}

TEST(IntervalTest, UnionSizeNestedAndEmpty) {
  EXPECT_EQ(UnionSize({{2, 9}, {3, 4}}), 8);
  EXPECT_EQ(UnionSize({}), 0);
}

TEST(LengthScheduleTest, GeometricCoversAllMagnitudes) {
  const auto lengths = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kGeometric, 0.5, 100);
  ASSERT_FALSE(lengths.empty());
  EXPECT_EQ(lengths.front(), 1);
  EXPECT_GE(lengths.back(), 100);
  // Nondecreasing, growth factor at most 1.5 between consecutive entries.
  for (size_t k = 1; k < lengths.size(); ++k) {
    EXPECT_GE(lengths[k], lengths[k - 1]);
    EXPECT_LE(static_cast<double>(lengths[k]),
              1.5 * static_cast<double>(lengths[k - 1]) + 1.0);
  }
}

TEST(LengthScheduleTest, GeometricHasDuplicatesAtSmallEpsilon) {
  // The plain NAB overhead of Fig. 9: floor((1+eps)^h) repeats for small h.
  const auto lengths = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kGeometric, 0.1, 50);
  int duplicates = 0;
  for (size_t k = 1; k < lengths.size(); ++k) {
    if (lengths[k] == lengths[k - 1]) ++duplicates;
  }
  EXPECT_GT(duplicates, 0);
}

TEST(LengthScheduleTest, RecursiveIsStrictlyIncreasing) {
  const auto lengths = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kRecursive, 0.1, 1000);
  EXPECT_EQ(lengths.front(), 1);
  EXPECT_GE(lengths.back(), 1000);
  for (size_t k = 1; k + 1 < lengths.size(); ++k) {
    EXPECT_GT(lengths[k], lengths[k - 1]);
    // Steps are +1 or a factor <= 1.1 — the Theorem 8/9 requirement.
    EXPECT_TRUE(lengths[k] == lengths[k - 1] + 1 ||
                static_cast<double>(lengths[k]) <=
                    1.1 * static_cast<double>(lengths[k - 1]))
        << "k=" << k;
  }
}

TEST(LengthScheduleTest, RecursiveShorterThanGeometricAtSmallEpsilon) {
  const auto geometric = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kGeometric, 0.01, 10000);
  const auto recursive = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kRecursive, 0.01, 10000);
  EXPECT_LT(recursive.size(), geometric.size());
}

// Anchor-sharded generation is an execution strategy, not an approximation:
// for every algorithm × model × tableau type the candidate list (and the
// shard-invariant counters) must be identical for any thread count.
TEST(ShardInvarianceTest, EveryAlgorithmModelAndTypeMatchesSequential) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/77, /*n=*/700);
  const series::CumulativeSeries cumulative(counts);

  const AlgorithmKind kinds[] = {
      AlgorithmKind::kExhaustive, AlgorithmKind::kAreaBased,
      AlgorithmKind::kAreaBasedOpt, AlgorithmKind::kNonAreaBased,
      AlgorithmKind::kNonAreaBasedOpt};
  const core::ConfidenceModel models[] = {core::ConfidenceModel::kBalance,
                                          core::ConfidenceModel::kCredit,
                                          core::ConfidenceModel::kDebit};
  const core::TableauType types[] = {core::TableauType::kHold,
                                     core::TableauType::kFail};

  for (const AlgorithmKind kind : kinds) {
    const bool non_area_based = kind == AlgorithmKind::kNonAreaBased ||
                                kind == AlgorithmKind::kNonAreaBasedOpt;
    for (const core::ConfidenceModel model : models) {
      // NAB/NAB-opt are defined for the balance model only (paper §V).
      if (non_area_based && model != core::ConfidenceModel::kBalance) {
        continue;
      }
      const core::ConfidenceEvaluator eval(&cumulative, model);
      const auto generator = MakeGenerator(kind);
      for (const core::TableauType type : types) {
        GeneratorOptions options;
        options.type = type;
        options.c_hat = type == core::TableauType::kHold ? 0.7 : 0.4;
        options.epsilon = 0.05;

        options.num_threads = 1;
        GeneratorStats sequential_stats;
        const std::vector<Interval> sequential =
            generator->Generate(eval, options, &sequential_stats);
        EXPECT_EQ(sequential_stats.shards, 1);

        for (const int threads : {2, 7, 0}) {
          options.num_threads = threads;
          GeneratorStats stats;
          const std::vector<Interval> sharded =
              generator->Generate(eval, options, &stats);
          EXPECT_EQ(sharded, sequential)
              << AlgorithmKindName(kind) << " model " << static_cast<int>(model)
              << " type " << static_cast<int>(type) << " threads " << threads;
          // The confidence-evaluation count and the emitted candidate count
          // are functions of the anchors alone, so they are shard
          // invariant (endpoint_steps may differ: chunks re-locate their
          // level pointers).
          EXPECT_EQ(stats.intervals_tested,
                    sequential_stats.intervals_tested);
          EXPECT_EQ(stats.candidates, sequential_stats.candidates);
          if (threads == 2) {
            EXPECT_EQ(stats.shards, 2);
            // The chunked scheduler dispatches chunks_per_thread chunks
            // per worker and reports per-worker accounting.
            EXPECT_EQ(stats.chunks,
                      std::min<int64_t>(700, 2 * options.chunks_per_thread));
            EXPECT_EQ(stats.shard_work.size(), 2u);
            uint64_t claimed = 0;
            for (const ShardWork& work : stats.shard_work) {
              claimed += work.chunks_claimed;
            }
            EXPECT_EQ(claimed, static_cast<uint64_t>(stats.chunks));
          }
        }
      }
    }
  }
}

// stop_on_full_cover keeps its sequential early-exit semantics (and output)
// under any requested thread count: the full-span candidate can only come
// from the sequential run's first anchor, so a multi-chunk run cancels all
// other chunks and returns exactly the sequential output.
TEST(ShardInvarianceTest, StopOnFullCoverMatchesSequentialAcrossChunks) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/5, /*n=*/300);
  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  GeneratorOptions options;
  options.type = core::TableauType::kHold;
  options.c_hat = 0.0;  // every interval qualifies: anchor 1 spans [1, n]
  options.epsilon = 0.05;
  options.stop_on_full_cover = true;

  for (const AlgorithmKind kind :
       {AlgorithmKind::kAreaBased, AlgorithmKind::kNonAreaBasedOpt}) {
    const auto generator = MakeGenerator(kind);
    options.num_threads = 1;
    GeneratorStats sequential_stats;
    const std::vector<Interval> sequential =
        generator->Generate(eval, options, &sequential_stats);
    ASSERT_EQ(sequential, (std::vector<Interval>{Interval{1, 300}}))
        << AlgorithmKindName(kind);

    options.num_threads = 7;
    GeneratorStats stats;
    const std::vector<Interval> sharded =
        generator->Generate(eval, options, &stats);
    EXPECT_EQ(sharded, sequential) << AlgorithmKindName(kind);
    EXPECT_EQ(stats.shards, 7) << AlgorithmKindName(kind);
    EXPECT_GT(stats.chunks, 1) << AlgorithmKindName(kind);
    // Cancelled chunks contribute no counters: the merged counts match the
    // sequential early exit.
    EXPECT_EQ(stats.intervals_tested, sequential_stats.intervals_tested)
        << AlgorithmKindName(kind);
    EXPECT_EQ(stats.candidates, 1u) << AlgorithmKindName(kind);
  }
}

TEST(GeneratorStatsTest, MergeSumsCountersAndLeavesDriverFieldsAlone) {
  GeneratorStats total;
  total.wall_seconds = 2.0;  // driver-owned: Merge must not touch it
  total.shards = 3;
  total.chunks = 9;
  GeneratorStats a;
  a.intervals_tested = 10;
  a.endpoint_steps = 3;
  a.candidates = 2;
  a.seconds = 0.5;
  GeneratorStats b;
  b.intervals_tested = 7;
  b.endpoint_steps = 9;
  b.candidates = 1;
  b.seconds = 0.25;
  b.wall_seconds = 0.75;  // ignored: per-chunk stats carry no wall time
  total.Merge(a);
  total.Merge(b);
  EXPECT_EQ(total.intervals_tested, 17u);
  EXPECT_EQ(total.endpoint_steps, 12u);
  EXPECT_EQ(total.candidates, 3u);
  EXPECT_DOUBLE_EQ(total.seconds, 0.75);
  EXPECT_DOUBLE_EQ(total.wall_seconds, 2.0);
  EXPECT_EQ(total.shards, 3);
  EXPECT_EQ(total.chunks, 9);
}

TEST(GeneratorStatsTest, ShardObservabilityDerivesFromParticipants) {
  GeneratorStats stats;
  // Two participating workers (1.0s, 3.0s), one idle straggler that never
  // claimed a chunk (excluded from the distribution).
  stats.shard_work = {ShardWork{1.0, 4, 0}, ShardWork{3.0, 8, 2},
                      ShardWork{0.0, 0, 0}};
  EXPECT_DOUBLE_EQ(stats.MinShardSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(stats.MaxShardSeconds(), 3.0);
  EXPECT_DOUBLE_EQ(stats.MedianShardSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(stats.ImbalanceRatio(), 1.5);  // 3.0 / mean(1, 3)
  EXPECT_EQ(stats.TotalSteals(), 2u);

  GeneratorStats sequential;
  sequential.shard_work = {ShardWork{0.5, 1, 0}};
  EXPECT_DOUBLE_EQ(sequential.ImbalanceRatio(), 1.0);
  EXPECT_DOUBLE_EQ(sequential.MedianShardSeconds(), 0.5);

  EXPECT_DOUBLE_EQ(GeneratorStats{}.ImbalanceRatio(), 1.0);
  EXPECT_DOUBLE_EQ(GeneratorStats{}.MinShardSeconds(), 0.0);
}

}  // namespace
}  // namespace conservation::interval
