#include <gtest/gtest.h>

#include "interval/interval.h"
#include "interval/non_area_based.h"

namespace conservation::interval {
namespace {

TEST(IntervalTest, LengthAndContains) {
  const Interval iv{3, 7};
  EXPECT_EQ(iv.length(), 5);
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(2));
  EXPECT_FALSE(iv.Contains(8));
  EXPECT_TRUE(iv.Contains(Interval{4, 6}));
  EXPECT_TRUE(iv.Contains(Interval{3, 7}));
  EXPECT_FALSE(iv.Contains(Interval{2, 6}));
}

TEST(IntervalTest, Overlaps) {
  const Interval iv{3, 7};
  EXPECT_TRUE(iv.Overlaps(Interval{7, 9}));
  EXPECT_TRUE(iv.Overlaps(Interval{1, 3}));
  EXPECT_FALSE(iv.Overlaps(Interval{8, 9}));
  EXPECT_FALSE(iv.Overlaps(Interval{1, 2}));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ((Interval{1, 10}.ToString()), "[1, 10]");
}

TEST(IntervalTest, ByPosition) {
  EXPECT_TRUE(ByPosition(Interval{1, 5}, Interval{2, 3}));
  EXPECT_TRUE(ByPosition(Interval{1, 3}, Interval{1, 5}));
  EXPECT_FALSE(ByPosition(Interval{1, 5}, Interval{1, 5}));
}

TEST(IntervalTest, UnionSizeDisjoint) {
  EXPECT_EQ(UnionSize({{1, 3}, {5, 6}}), 5);
}

TEST(IntervalTest, UnionSizeOverlapping) {
  EXPECT_EQ(UnionSize({{1, 5}, {3, 8}, {8, 9}}), 9);
}

TEST(IntervalTest, UnionSizeAdjacentMerges) {
  EXPECT_EQ(UnionSize({{1, 3}, {4, 6}}), 6);
}

TEST(IntervalTest, UnionSizeNestedAndEmpty) {
  EXPECT_EQ(UnionSize({{2, 9}, {3, 4}}), 8);
  EXPECT_EQ(UnionSize({}), 0);
}

TEST(LengthScheduleTest, GeometricCoversAllMagnitudes) {
  const auto lengths = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kGeometric, 0.5, 100);
  ASSERT_FALSE(lengths.empty());
  EXPECT_EQ(lengths.front(), 1);
  EXPECT_GE(lengths.back(), 100);
  // Nondecreasing, growth factor at most 1.5 between consecutive entries.
  for (size_t k = 1; k < lengths.size(); ++k) {
    EXPECT_GE(lengths[k], lengths[k - 1]);
    EXPECT_LE(static_cast<double>(lengths[k]),
              1.5 * static_cast<double>(lengths[k - 1]) + 1.0);
  }
}

TEST(LengthScheduleTest, GeometricHasDuplicatesAtSmallEpsilon) {
  // The plain NAB overhead of Fig. 9: floor((1+eps)^h) repeats for small h.
  const auto lengths = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kGeometric, 0.1, 50);
  int duplicates = 0;
  for (size_t k = 1; k < lengths.size(); ++k) {
    if (lengths[k] == lengths[k - 1]) ++duplicates;
  }
  EXPECT_GT(duplicates, 0);
}

TEST(LengthScheduleTest, RecursiveIsStrictlyIncreasing) {
  const auto lengths = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kRecursive, 0.1, 1000);
  EXPECT_EQ(lengths.front(), 1);
  EXPECT_GE(lengths.back(), 1000);
  for (size_t k = 1; k + 1 < lengths.size(); ++k) {
    EXPECT_GT(lengths[k], lengths[k - 1]);
    // Steps are +1 or a factor <= 1.1 — the Theorem 8/9 requirement.
    EXPECT_TRUE(lengths[k] == lengths[k - 1] + 1 ||
                static_cast<double>(lengths[k]) <=
                    1.1 * static_cast<double>(lengths[k - 1]))
        << "k=" << k;
  }
}

TEST(LengthScheduleTest, RecursiveShorterThanGeometricAtSmallEpsilon) {
  const auto geometric = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kGeometric, 0.01, 10000);
  const auto recursive = NonAreaBasedGenerator::MakeLengthSchedule(
      NonAreaBasedGenerator::LengthSchedule::kRecursive, 0.01, 10000);
  EXPECT_LT(recursive.size(), geometric.size());
}

}  // namespace
}  // namespace conservation::interval
