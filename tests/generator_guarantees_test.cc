// Parameterized validation of the paper's approximation guarantees
// (Theorems 2, 3, 6, 8, 9) against the exhaustive generator on random
// dominated integer data.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <tuple>

#include "core/confidence.h"
#include "interval/generator.h"
#include "tests/test_data.h"

namespace conservation::interval {
namespace {

using core::ConfidenceEvaluator;
using core::ConfidenceModel;
using core::TableauType;

struct GuaranteeCase {
  AlgorithmKind algorithm;
  ConfidenceModel model;
  TableauType type;
  double c_hat;
  double epsilon;
  uint64_t seed;
};

class GeneratorGuarantees
    : public ::testing::TestWithParam<
          std::tuple<AlgorithmKind, ConfidenceModel, TableauType, double,
                     double, uint64_t>> {
 protected:
  GuaranteeCase Case() const {
    const auto& [algorithm, model, type, c_hat, epsilon, seed] = GetParam();
    return GuaranteeCase{algorithm, model, type, c_hat, epsilon, seed};
  }

  static bool Applicable(const GuaranteeCase& c) {
    const bool non_area = c.algorithm == AlgorithmKind::kNonAreaBased ||
                          c.algorithm == AlgorithmKind::kNonAreaBasedOpt;
    return !non_area || c.model == ConfidenceModel::kBalance;
  }
};

TEST_P(GeneratorGuarantees, NoFalsePositivesAndNoFalseNegatives) {
  const GuaranteeCase c = Case();
  if (!Applicable(c)) GTEST_SKIP() << "NAB requires the balance model";

  const int64_t n = 80;
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(c.seed, n);
  const series::CumulativeSeries cumulative(counts);
  const ConfidenceEvaluator eval(&cumulative, c.model);

  GeneratorOptions options;
  options.type = c.type;
  options.c_hat = c.c_hat;
  options.epsilon = c.epsilon;

  const auto generator = MakeGenerator(c.algorithm);
  GeneratorStats stats;
  const std::vector<Interval> produced =
      generator->Generate(eval, options, &stats);

  // --- No false positives (Theorems 2.1, 3.1, 6.1, 8.1, 9.1): every
  // produced interval satisfies the relaxed threshold.
  for (const Interval& iv : produced) {
    const std::optional<double> conf = eval.Confidence(iv.begin, iv.end);
    ASSERT_TRUE(conf.has_value()) << iv.ToString();
    EXPECT_TRUE(PassesRelaxedThreshold(*conf, options))
        << iv.ToString() << " conf=" << *conf;
  }

  // Index the produced intervals by anchor.
  std::map<int64_t, int64_t> end_by_begin;    // AB-style anchors
  std::map<int64_t, int64_t> begin_by_end;    // NAB-style anchors
  for (const Interval& iv : produced) {
    auto [it, inserted] = end_by_begin.emplace(iv.begin, iv.end);
    if (!inserted) it->second = std::max(it->second, iv.end);
    auto [it2, inserted2] = begin_by_end.emplace(iv.end, iv.begin);
    if (!inserted2) it2->second = std::min(it2->second, iv.begin);
  }

  const bool left_anchored = c.algorithm == AlgorithmKind::kAreaBased ||
                             c.algorithm == AlgorithmKind::kAreaBasedOpt;

  // --- No false negatives. Ground truth per anchor by brute force.
  if (left_anchored) {
    // Theorems 2.2 / 3.2 / 6.2: for each i with exact-threshold optimum
    // [i, j*], the algorithm produced [i, j'] with j' >= j*.
    for (int64_t i = 1; i <= n; ++i) {
      int64_t j_star = 0;
      for (int64_t j = i; j <= n; ++j) {
        const std::optional<double> conf = eval.Confidence(i, j);
        if (conf.has_value() && PassesExactThreshold(*conf, options)) {
          j_star = j;
        }
      }
      if (j_star == 0) continue;
      const auto it = end_by_begin.find(i);
      ASSERT_NE(it, end_by_begin.end())
          << "anchor " << i << " missing (j*=" << j_star << ")";
      EXPECT_GE(it->second, j_star) << "anchor " << i;
    }
  } else {
    for (int64_t j = 1; j <= n; ++j) {
      int64_t i_star = 0;
      for (int64_t i = j; i >= 1; --i) {
        const std::optional<double> conf = eval.Confidence(i, j);
        if (conf.has_value() && PassesExactThreshold(*conf, options)) {
          i_star = i;
        }
      }
      if (i_star == 0) continue;
      const auto it = begin_by_end.find(j);
      ASSERT_NE(it, begin_by_end.end())
          << "anchor j=" << j << " missing (i*=" << i_star << ")";
      if (c.type == TableauType::kHold) {
        // Theorem 8.2: i' <= i*.
        EXPECT_LE(it->second, i_star) << "anchor j=" << j;
      } else {
        // Theorem 9.2: the produced interval is at most (1+eps) shorter.
        const double produced_len = static_cast<double>(j - it->second + 1);
        const double optimal_len = static_cast<double>(j - i_star + 1);
        EXPECT_GE(produced_len * (1.0 + c.epsilon), optimal_len - 1e-9)
            << "anchor j=" << j;
      }
    }
  }
}

TEST_P(GeneratorGuarantees, EarlyExitPreservesQualifyingOutput) {
  const GuaranteeCase c = Case();
  if (!Applicable(c)) GTEST_SKIP() << "NAB requires the balance model";
  if (c.algorithm == AlgorithmKind::kAreaBased) {
    GTEST_SKIP() << "plain AB does not support largest-first early exit";
  }

  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(c.seed + 17, 60);
  const series::CumulativeSeries cumulative(counts);
  const ConfidenceEvaluator eval(&cumulative, c.model);

  GeneratorOptions options;
  options.type = c.type;
  options.c_hat = c.c_hat;
  options.epsilon = c.epsilon;

  const auto generator = MakeGenerator(c.algorithm);
  GeneratorStats full_stats;
  const std::vector<Interval> full =
      generator->Generate(eval, options, &full_stats);

  options.largest_first_early_exit = true;
  GeneratorStats early_stats;
  const std::vector<Interval> early =
      generator->Generate(eval, options, &early_stats);

  // Early exit returns exactly the same per-anchor longest intervals...
  EXPECT_EQ(full, early);
  // ... with no more confidence tests.
  EXPECT_LE(early_stats.intervals_tested, full_stats.intervals_tested);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorGuarantees,
    ::testing::Combine(
        ::testing::Values(AlgorithmKind::kAreaBased,
                          AlgorithmKind::kAreaBasedOpt,
                          AlgorithmKind::kNonAreaBased,
                          AlgorithmKind::kNonAreaBasedOpt),
        ::testing::Values(ConfidenceModel::kBalance, ConfidenceModel::kCredit,
                          ConfidenceModel::kDebit),
        ::testing::Values(core::TableauType::kHold, core::TableauType::kFail),
        ::testing::Values(0.3, 0.7, 0.95),  // c_hat
        ::testing::Values(0.01, 0.2, 1.0),  // epsilon
        ::testing::Values(11u, 29u)));      // seed

}  // namespace
}  // namespace conservation::interval
