#include <gtest/gtest.h>

#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace conservation::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad epsilon");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad epsilon");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, ParseDouble) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &value));
  EXPECT_DOUBLE_EQ(value, -1000.0);
  EXPECT_FALSE(ParseDouble("12x", &value));
  EXPECT_FALSE(ParseDouble("", &value));
}

TEST(StringUtilTest, FormatNumber) {
  EXPECT_EQ(FormatNumber(3.0), "3");
  EXPECT_EQ(FormatNumber(3.14159, 3), "3.142");
  EXPECT_EQ(FormatNumber(2.5000, 4), "2.5");
  EXPECT_EQ(FormatNumber(-7.0), "-7");
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  // The stopwatch reads steady_clock (a static_assert pins it); successive
  // reads must never go backwards — a wall-clock-based timer would under
  // NTP adjustment.
  Stopwatch stopwatch;
  double last_seconds = 0.0;
  int64_t last_nanos = 0;
  for (int k = 0; k < 1000; ++k) {
    const double seconds = stopwatch.ElapsedSeconds();
    const int64_t nanos = stopwatch.ElapsedNanos();
    EXPECT_GE(seconds, last_seconds);
    EXPECT_GE(nanos, last_nanos);
    last_seconds = seconds;
    last_nanos = nanos;
  }
  EXPECT_GE(last_seconds, 0.0);
  EXPECT_GE(last_nanos, 0);
}

TEST(StopwatchTest, RestartResetsElapsed) {
  Stopwatch stopwatch;
  // Burn a little time so the pre-restart reading is strictly positive.
  volatile double sink = 0.0;
  for (int k = 0; k < 100000; ++k) sink += static_cast<double>(k);
  const double before = stopwatch.ElapsedSeconds();
  EXPECT_GT(before, 0.0);
  stopwatch.Restart();
  EXPECT_LT(stopwatch.ElapsedSeconds(), before);
}

TEST(RngTest, Deterministic) {
  Rng rng1(99);
  Rng rng2(99);
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(rng1.UniformInt(0, 1000000), rng2.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int k = 0; k < 1000; ++k) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const int64_t i = rng.UniformInt(-5, 5);
    EXPECT_GE(i, -5);
    EXPECT_LE(i, 5);
  }
}

TEST(RngTest, PoissonMean) {
  Rng rng(7);
  double sum = 0.0;
  const int trials = 20000;
  for (int k = 0; k < trials; ++k) sum += rng.Poisson(4.0);
  EXPECT_NEAR(sum / trials, 4.0, 0.1);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(7);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int k = 0; k < 100; ++k) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace conservation::util
