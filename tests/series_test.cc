#include <gtest/gtest.h>

#include "series/cumulative.h"
#include "series/preprocess.h"
#include "series/sequence.h"

namespace conservation::series {
namespace {

TEST(CountSequenceTest, CreateValid) {
  auto counts = CountSequence::Create({1, 2, 3}, {4, 5, 6});
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->n(), 3);
  EXPECT_DOUBLE_EQ(counts->a(1), 1.0);
  EXPECT_DOUBLE_EQ(counts->b(3), 6.0);
}

TEST(CountSequenceTest, RejectsLengthMismatch) {
  auto counts = CountSequence::Create({1, 2}, {1});
  EXPECT_FALSE(counts.ok());
  EXPECT_EQ(counts.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(CountSequenceTest, RejectsEmpty) {
  EXPECT_FALSE(CountSequence::Create({}, {}).ok());
}

TEST(CountSequenceTest, RejectsNegative) {
  EXPECT_FALSE(CountSequence::Create({1, -2}, {1, 2}).ok());
  EXPECT_FALSE(CountSequence::Create({1, 2}, {-1, 2}).ok());
}

TEST(CountSequenceTest, RejectsNonFinite) {
  EXPECT_FALSE(
      CountSequence::Create({1, std::numeric_limits<double>::infinity()},
                            {1, 2})
          .ok());
  EXPECT_FALSE(
      CountSequence::Create({1, 2},
                            {std::numeric_limits<double>::quiet_NaN(), 2})
          .ok());
}

TEST(CountSequenceTest, RejectsAllZero) {
  EXPECT_FALSE(CountSequence::Create({0, 0}, {0, 0}).ok());
}

TEST(CountSequenceTest, AllowsOneSideZero) {
  // Outbound all-zero is legal: it models total loss.
  EXPECT_TRUE(CountSequence::Create({0, 0}, {1, 2}).ok());
}

TEST(CountSequenceTest, PrefixAndScale) {
  auto counts = CountSequence::Create({1, 2, 3, 4}, {5, 6, 7, 8});
  ASSERT_TRUE(counts.ok());
  const CountSequence prefix = counts->Prefix(2);
  EXPECT_EQ(prefix.n(), 2);
  EXPECT_DOUBLE_EQ(prefix.b(2), 6.0);
  const CountSequence scaled = counts->Scaled(2.0);
  EXPECT_DOUBLE_EQ(scaled.a(3), 6.0);
  EXPECT_DOUBLE_EQ(scaled.b(1), 10.0);
}

// The paper's Figure 2 data: a = <2,0,1,1,2>, b = <3,1,1,2,0>.
class PaperFigure2 : public ::testing::Test {
 protected:
  PaperFigure2()
      : counts_(*CountSequence::Create({2, 0, 1, 1, 2}, {3, 1, 1, 2, 0})),
        cumulative_(counts_) {}

  CountSequence counts_;
  CumulativeSeries cumulative_;
};

TEST_F(PaperFigure2, CumulativeCurves) {
  // A = <0,2,2,3,4,6>, B = <0,3,4,5,7,7>.
  const double expected_A[] = {0, 2, 2, 3, 4, 6};
  const double expected_B[] = {0, 3, 4, 5, 7, 7};
  for (int64_t l = 0; l <= 5; ++l) {
    EXPECT_DOUBLE_EQ(cumulative_.A(l), expected_A[l]) << "l=" << l;
    EXPECT_DOUBLE_EQ(cumulative_.B(l), expected_B[l]) << "l=" << l;
  }
}

TEST_F(PaperFigure2, SumsOverIntervals) {
  // sum_{l=2..5} A_l = 2+3+4+6 = 15; sum B = 4+5+7+7 = 23.
  EXPECT_DOUBLE_EQ(cumulative_.SumA(2, 5), 15.0);
  EXPECT_DOUBLE_EQ(cumulative_.SumB(2, 5), 23.0);
  EXPECT_DOUBLE_EQ(cumulative_.SumA(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(cumulative_.SumA(3, 2), 0.0);  // empty
}

TEST_F(PaperFigure2, SuffixMinGap) {
  // B - A = <1,2,2,3,1> at l = 1..5.
  EXPECT_DOUBLE_EQ(cumulative_.SuffixMinGap(1), 1.0);
  EXPECT_DOUBLE_EQ(cumulative_.SuffixMinGap(2), 1.0);
  EXPECT_DOUBLE_EQ(cumulative_.SuffixMinGap(3), 1.0);
  EXPECT_DOUBLE_EQ(cumulative_.SuffixMinGap(4), 1.0);
  EXPECT_DOUBLE_EQ(cumulative_.SuffixMinGap(5), 1.0);
}

TEST_F(PaperFigure2, DeltaIsMinPositive) { EXPECT_DOUBLE_EQ(cumulative_.delta(), 1.0); }

TEST_F(PaperFigure2, Dominates) { EXPECT_TRUE(cumulative_.Dominates()); }

TEST_F(PaperFigure2, TotalDelay) {
  // sum (B_l - A_l) = 1+2+2+3+1 = 9.
  EXPECT_DOUBLE_EQ(cumulative_.TotalDelay(), 9.0);
}

TEST(CumulativeSeriesTest, SuffixMinGapDecreasingTail) {
  auto counts = CountSequence::Create({0, 0, 5, 0}, {3, 2, 0, 1});
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  // B = <3,5,5,6>, A = <0,0,5,5>; gaps = <3,5,0,1>.
  EXPECT_DOUBLE_EQ(cumulative.SuffixMinGap(1), 0.0);
  EXPECT_DOUBLE_EQ(cumulative.SuffixMinGap(2), 0.0);
  EXPECT_DOUBLE_EQ(cumulative.SuffixMinGap(3), 0.0);
  EXPECT_DOUBLE_EQ(cumulative.SuffixMinGap(4), 1.0);
}

TEST(CumulativeSeriesTest, DominanceDetectsViolation) {
  auto counts = CountSequence::Create({5, 0}, {1, 4});
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  EXPECT_FALSE(cumulative.Dominates());
}

TEST(PreprocessTest, EnforceDominanceSwapsCurves) {
  auto counts = CountSequence::Create({5, 0, 1}, {1, 4, 1});
  ASSERT_TRUE(counts.ok());
  const CountSequence fixed = EnforceDominance(*counts);
  const CumulativeSeries cumulative(fixed);
  EXPECT_TRUE(cumulative.Dominates());
  // Totals are preserved: min+max swap keeps the multiset of curve values.
  const CumulativeSeries original(*counts);
  EXPECT_DOUBLE_EQ(cumulative.A(3) + cumulative.B(3),
                   original.A(3) + original.B(3));
}

TEST(PreprocessTest, EnforceDominanceIdempotentWhenDominated) {
  auto counts = CountSequence::Create({1, 1, 1}, {2, 2, 2});
  ASSERT_TRUE(counts.ok());
  const CountSequence fixed = EnforceDominance(*counts);
  for (int64_t t = 1; t <= 3; ++t) {
    EXPECT_DOUBLE_EQ(fixed.a(t), counts->a(t));
    EXPECT_DOUBLE_EQ(fixed.b(t), counts->b(t));
  }
}

TEST(PreprocessTest, MakeDominatedSequencePropagatesErrors) {
  EXPECT_FALSE(MakeDominatedSequence({1, -1}, {1, 1}).ok());
  auto ok = MakeDominatedSequence({5, 0}, {0, 5});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(CumulativeSeries(*ok).Dominates());
}

}  // namespace
}  // namespace conservation::series
