// Differential test: the lazy-heap + Fenwick GreedyPartialSetCover must be
// bit-identical to the preserved naive implementation
// (tests/reference_cover.h) — same chosen intervals in the same order, same
// chosen_indices, covered, required, satisfied — across both tie-break
// modes, adversarial candidate shapes (nested chains, duplicate-heavy,
// width-1 staircases), the s_hat extremes, unsatisfiable instances, and
// parallel seeding thread counts.

#include <gtest/gtest.h>

#include <vector>

#include "cover/partial_set_cover.h"
#include "tests/reference_cover.h"
#include "util/random.h"

namespace conservation::cover {
namespace {

using interval::Interval;

void ExpectIdentical(const std::vector<Interval>& candidates, int64_t n,
                     const CoverOptions& options) {
  const CoverResult lazy = GreedyPartialSetCover(candidates, n, options);
  const CoverResult naive =
      ReferenceGreedyPartialSetCover(candidates, n, options);
  ASSERT_EQ(lazy.chosen, naive.chosen)
      << "n=" << n << " m=" << candidates.size()
      << " deterministic=" << options.deterministic_tie_break
      << " s_hat=" << options.s_hat << " threads=" << options.num_threads;
  EXPECT_EQ(lazy.chosen_indices, naive.chosen_indices);
  EXPECT_EQ(lazy.covered, naive.covered);
  EXPECT_EQ(lazy.required, naive.required);
  EXPECT_EQ(lazy.satisfied, naive.satisfied);
  // Internal consistency of the stats the lazy path reports.
  EXPECT_EQ(lazy.stats.rounds, static_cast<int64_t>(lazy.chosen.size()));
  EXPECT_GE(lazy.stats.heap_pops, lazy.stats.rounds);
  EXPECT_GE(lazy.stats.heap_pops,
            lazy.stats.rounds + lazy.stats.stale_reevaluations);
}

void ExpectIdenticalAllModes(const std::vector<Interval>& candidates,
                             int64_t n) {
  for (const double s_hat : {0.0, 0.5, 1.0}) {
    for (const bool deterministic : {true, false}) {
      for (const int threads : {1, 3}) {
        CoverOptions options;
        options.s_hat = s_hat;
        options.deterministic_tie_break = deterministic;
        options.num_threads = threads;
        ExpectIdentical(candidates, n, options);
      }
    }
  }
}

TEST(CoverLazyDifferentialTest, NestedChain) {
  // Every interval nests inside the previous one; after the outermost pick
  // every other candidate has zero gain and must be retired, never chosen.
  const int64_t n = 64;
  std::vector<Interval> candidates;
  for (int64_t i = 1; i <= n / 2; ++i) {
    candidates.push_back(Interval{i, n + 1 - i});
  }
  ExpectIdenticalAllModes(candidates, n);
}

TEST(CoverLazyDifferentialTest, DuplicateHeavy) {
  // Each distinct interval appears four times; the scan picks the first
  // copy and the lazy heap must do the same (index-ascending tie-break).
  const int64_t n = 40;
  std::vector<Interval> candidates;
  for (int64_t b = 1; b + 7 <= n; b += 5) {
    for (int copy = 0; copy < 4; ++copy) {
      candidates.push_back(Interval{b, b + 7});
    }
  }
  ExpectIdenticalAllModes(candidates, n);
}

TEST(CoverLazyDifferentialTest, WidthOneStaircase) {
  const int64_t n = 25;
  std::vector<Interval> candidates;
  for (int64_t t = 1; t <= n; t += 2) {
    candidates.push_back(Interval{t, t});
  }
  ExpectIdenticalAllModes(candidates, n);  // odd ticks only: s_hat=1 fails
}

TEST(CoverLazyDifferentialTest, UnsatisfiableStopsIdentically) {
  CoverOptions options;
  options.s_hat = 0.9;
  ExpectIdentical({{1, 2}, {5, 6}, {5, 6}}, 100, options);
}

TEST(CoverLazyDifferentialTest, SingleTickUniverse) {
  ExpectIdenticalAllModes({{1, 1}, {1, 1}}, 1);
}

TEST(CoverLazyDifferentialTest, EqualGainDistinctPositions) {
  // Three disjoint equal-length intervals in scrambled input order: the
  // deterministic mode must pick by position, the non-deterministic mode by
  // input index.
  ExpectIdenticalAllModes({{11, 15}, {1, 5}, {21, 25}}, 30);
}

// Randomized sweep mixing random spans, duplicates, nested pairs, and
// width-1 intervals.
class CoverLazyDifferentialRandom
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverLazyDifferentialRandom, MatchesReference) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    const int64_t n = rng.UniformInt(1, 120);
    const int64_t m = rng.UniformInt(0, 50);
    std::vector<Interval> candidates;
    for (int64_t k = 0; k < m; ++k) {
      const int64_t begin = rng.UniformInt(1, n);
      const int64_t end = std::min<int64_t>(n, begin + rng.UniformInt(0, 20));
      candidates.push_back(Interval{begin, end});
      const int64_t shape = rng.UniformInt(0, 3);
      if (shape == 0) {
        candidates.push_back(Interval{begin, end});  // exact duplicate
      } else if (shape == 1 && end - begin >= 2) {
        candidates.push_back(Interval{begin + 1, end - 1});  // nested
      } else if (shape == 2) {
        candidates.push_back(Interval{end, end});  // width-1
      }
    }
    ExpectIdenticalAllModes(candidates, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverLazyDifferentialRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(CoverLazyDifferentialTest, TickVisitsNearLinear) {
  // Heavily overlapping shingles force the naive marker to re-walk covered
  // runs; the union-find skip pointers must keep total tick visits
  // O(n alpha(n)) — asserted as a small constant times n — while the naive
  // walk would touch sum-of-lengths ~ 16n ticks.
  const int64_t n = 4096;
  std::vector<Interval> candidates;
  for (int64_t b = 1; b <= n; b += 2) {
    candidates.push_back(Interval{b, std::min<int64_t>(n, b + 31)});
  }
  CoverOptions options;
  options.s_hat = 1.0;
  const CoverResult result = GreedyPartialSetCover(candidates, n, options);
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.covered, n);
  const int64_t picks = result.stats.rounds;
  EXPECT_LT(result.stats.tick_visits, 10 * (n + picks));
  // The naive equivalent walks every tick of every pick: ~32 per pick.
  int64_t naive_walk = 0;
  for (const Interval& iv : result.chosen) naive_walk += iv.length();
  EXPECT_GE(naive_walk, n);  // sanity: lazy did not skip real work
}

}  // namespace
}  // namespace conservation::cover
