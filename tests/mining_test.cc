#include <gtest/gtest.h>

#include "mining/divergence.h"
#include "mining/support_rules.h"
#include "tests/test_data.h"

namespace conservation::mining {
namespace {

using series::CountSequence;

// Brute-force reference: all maximal intervals whose ratio passes.
std::vector<MinedInterval> BruteForceMaximal(
    const CountSequence& counts, const SupportRulesOptions& options) {
  const int64_t n = counts.n();
  std::vector<double> x(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> y(static_cast<size_t>(n) + 1, 0.0);
  double cum_a = 0.0;
  double cum_b = 0.0;
  for (int64_t l = 1; l <= n; ++l) {
    cum_a += counts.a(l);
    cum_b += counts.b(l);
    if (options.metric == RatioMetric::kInstantaneousSum) {
      x[static_cast<size_t>(l)] = counts.a(l);
      y[static_cast<size_t>(l)] = counts.b(l);
    } else {
      x[static_cast<size_t>(l)] = cum_a;
      y[static_cast<size_t>(l)] = cum_b;
    }
  }
  const auto qualifies = [&](int64_t i, int64_t j, double* ratio) {
    double sx = 0.0;
    double sy = 0.0;
    for (int64_t l = i; l <= j; ++l) {
      sx += x[static_cast<size_t>(l)];
      sy += y[static_cast<size_t>(l)];
    }
    // Match the miner's transform-based predicate: sum(x - c*y) <= 0 (fail)
    // or >= 0 (hold). The ratio is only reported when sy > 0.
    const double slack = sx - options.c_hat * sy;
    const bool pass = options.type == core::TableauType::kFail
                          ? slack <= 0.0
                          : slack >= 0.0;
    if (!pass || sy <= 0.0) return false;
    if (j - i + 1 < options.min_length) return false;
    *ratio = sx / sy;
    return true;
  };
  std::vector<MinedInterval> all;
  for (int64_t i = 1; i <= n; ++i) {
    for (int64_t j = i; j <= n; ++j) {
      double ratio = 0.0;
      if (qualifies(i, j, &ratio)) {
        all.push_back(MinedInterval{{i, j}, ratio});
      }
    }
  }
  // Maximal filter.
  std::vector<MinedInterval> maximal;
  for (const MinedInterval& cand : all) {
    bool contained = false;
    for (const MinedInterval& other : all) {
      if (other.interval == cand.interval) continue;
      if (other.interval.Contains(cand.interval)) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.push_back(cand);
  }
  return maximal;
}

TEST(SupportRulesTest, SimpleFailInterval) {
  // a matches b except ticks 3-5 where outbound drops.
  auto counts = CountSequence::Create({5, 5, 0, 0, 0, 5, 5},
                                      {5, 5, 5, 5, 5, 5, 5});
  ASSERT_TRUE(counts.ok());
  SupportRulesOptions options;
  options.metric = RatioMetric::kInstantaneousSum;
  options.type = core::TableauType::kFail;
  options.c_hat = 0.2;
  const auto mined = MineMaximalIntervals(*counts, options);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined[0].interval, (interval::Interval{3, 5}));
  EXPECT_DOUBLE_EQ(mined[0].ratio, 0.0);
}

TEST(SupportRulesTest, HoldCoversEverythingWhenBalanced) {
  auto counts = CountSequence::Create({5, 5, 5}, {5, 5, 5});
  ASSERT_TRUE(counts.ok());
  SupportRulesOptions options;
  options.type = core::TableauType::kHold;
  options.c_hat = 1.0;
  const auto mined = MineMaximalIntervals(*counts, options);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined[0].interval, (interval::Interval{1, 3}));
}

TEST(SupportRulesTest, MinLengthFilters) {
  auto counts = CountSequence::Create({5, 0, 5, 5, 5}, {5, 5, 5, 5, 5});
  ASSERT_TRUE(counts.ok());
  SupportRulesOptions options;
  options.type = core::TableauType::kFail;
  options.c_hat = 0.1;
  options.min_length = 2;
  const auto mined = MineMaximalIntervals(*counts, options);
  EXPECT_TRUE(mined.empty());  // the only failing interval has length 1
}

TEST(SupportRulesTest, OutsideRangeMergesBothSides) {
  auto counts = CountSequence::Create({0, 10, 5}, {10, 10, 5});
  ASSERT_TRUE(counts.ok());
  const auto mined = MineOutsideRange(
      *counts, RatioMetric::kInstantaneousSum, 0.1, 0.99);
  // Tick 1 has ratio 0 (<= 0.1); ticks 2-3 have ratio 1 (>= 0.99).
  ASSERT_GE(mined.size(), 2u);
  EXPECT_EQ(mined.front().interval.begin, 1);
}

class SupportRulesProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, RatioMetric,
                                                 core::TableauType, double>> {
};

TEST_P(SupportRulesProperty, MatchesBruteForce) {
  const auto& [seed, metric, type, c_hat] = GetParam();
  const CountSequence counts =
      testing_util::RandomDominatedCounts(seed, 40);
  SupportRulesOptions options;
  options.metric = metric;
  options.type = type;
  options.c_hat = c_hat;
  const auto fast = MineMaximalIntervals(counts, options);
  const auto slow = BruteForceMaximal(counts, options);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t k = 0; k < fast.size(); ++k) {
    EXPECT_EQ(fast[k].interval, slow[k].interval) << k;
    EXPECT_NEAR(fast[k].ratio, slow[k].ratio, 1e-9) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SupportRulesProperty,
    ::testing::Combine(::testing::Values(5u, 17u, 23u),
                       ::testing::Values(RatioMetric::kInstantaneousSum,
                                         RatioMetric::kZeroBaselineArea),
                       ::testing::Values(core::TableauType::kHold,
                                         core::TableauType::kFail),
                       ::testing::Values(0.3, 0.8)));

TEST(DivergenceTest, TopPointwiseOrdersByMagnitude) {
  auto counts = CountSequence::Create({1, 1, 1, 1}, {2, 9, 1, 4});
  ASSERT_TRUE(counts.ok());
  const auto top = TopPointwiseDivergence(*counts, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].tick, 2);
  EXPECT_DOUBLE_EQ(top[0].divergence, 8.0);
  EXPECT_EQ(top[1].tick, 4);
}

TEST(DivergenceTest, TopPointwiseKLargerThanN) {
  auto counts = CountSequence::Create({1, 1}, {2, 2});
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(TopPointwiseDivergence(*counts, 10).size(), 2u);
}

TEST(DivergenceTest, WindowsAreNonOverlapping) {
  auto counts = CountSequence::Create({0, 0, 0, 0, 0, 0},
                                      {3, 3, 3, 3, 3, 3});
  ASSERT_TRUE(counts.ok());
  const auto top = TopWindowDivergence(*counts, 2, 3);
  ASSERT_EQ(top.size(), 3u);
  for (size_t p = 0; p < top.size(); ++p) {
    for (size_t q = p + 1; q < top.size(); ++q) {
      EXPECT_FALSE(top[p].window.Overlaps(top[q].window));
    }
  }
}

TEST(DivergenceTest, WindowDivergenceValues) {
  auto counts = CountSequence::Create({1, 1, 1, 1}, {1, 5, 5, 1});
  ASSERT_TRUE(counts.ok());
  const auto top = TopWindowDivergence(*counts, 2, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].window, (interval::Interval{2, 3}));
  EXPECT_DOUBLE_EQ(top[0].divergence, 8.0);
}

}  // namespace
}  // namespace conservation::mining
