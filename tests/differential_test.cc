// Differential and fuzz-style tests on realistic data shapes: the synthetic
// dataset generators produce diurnal, bursty, trending series whose area
// growth patterns differ from uniform random data; the approximation
// guarantees must hold on all of them.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <fstream>

#include "core/confidence.h"
#include "datagen/credit_card.h"
#include "datagen/job_log.h"
#include "datagen/people_count.h"
#include "datagen/power_grid.h"
#include "datagen/router.h"
#include "datagen/tcp_trace.h"
#include "interval/generator.h"
#include "io/csv.h"
#include "series/preprocess.h"
#include "util/random.h"

namespace conservation {
namespace {

using core::ConfidenceEvaluator;
using core::ConfidenceModel;
using core::TableauType;
using interval::AlgorithmKind;
using interval::GeneratorOptions;
using interval::Interval;

// A small prefix of each dataset, by name.
series::CountSequence DatasetPrefix(const std::string& name, int64_t n) {
  if (name == "credit_card") {
    return datagen::GenerateCreditCard().counts.Prefix(
        std::min<int64_t>(n, 344));
  }
  if (name == "people_count") {
    return datagen::GeneratePeopleCount().counts.Prefix(n);
  }
  if (name == "router_bad") {
    datagen::RouterParams params;
    params.profile = datagen::RouterProfile::kLateActivation;
    params.num_ticks = n;
    params.activation_tick = n * 4 / 5;
    return datagen::GenerateRouter(params).counts;
  }
  if (name == "tcp") {
    datagen::TcpTraceParams params;
    params.num_ticks = n;
    return datagen::GenerateTcpTrace(params).counts;
  }
  if (name == "joblog") {
    datagen::JobLogParams params;
    params.num_ticks = n;
    return datagen::GenerateJobLog(params).counts;
  }
  if (name == "powergrid") {
    datagen::PowerGridParams params;
    params.num_ticks = n;
    params.theft_start_tick = n / 2;
    return datagen::GeneratePowerGrid(params).counts;
  }
  CR_UNREACHABLE();
}

class DatasetDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::string, AlgorithmKind, TableauType>> {};

TEST_P(DatasetDifferential, ApproximationGuaranteesOnRealisticShapes) {
  const auto& [dataset, kind, type] = GetParam();
  const int64_t n = 220;
  const series::CountSequence counts = DatasetPrefix(dataset, n);
  const series::CumulativeSeries cumulative(counts);

  for (const ConfidenceModel model :
       {ConfidenceModel::kBalance, ConfidenceModel::kCredit,
        ConfidenceModel::kDebit}) {
    const bool nab = kind == AlgorithmKind::kNonAreaBased ||
                     kind == AlgorithmKind::kNonAreaBasedOpt;
    if (nab && model != ConfidenceModel::kBalance) continue;
    const ConfidenceEvaluator eval(&cumulative, model);

    // Pick a threshold in the data's interesting range: halfway between the
    // overall confidence and the extreme.
    const double overall = eval.Confidence(1, counts.n()).value_or(0.5);
    GeneratorOptions options;
    options.type = type;
    options.c_hat = type == TableauType::kHold
                        ? std::min(1.0, overall * 0.9 + 0.1)
                        : overall * 0.75;
    options.epsilon = 0.05;

    const auto approx =
        interval::MakeGenerator(kind)->Generate(eval, options, nullptr);
    // No false positives.
    for (const Interval& iv : approx) {
      const auto conf = eval.Confidence(iv.begin, iv.end);
      ASSERT_TRUE(conf.has_value());
      EXPECT_TRUE(interval::PassesRelaxedThreshold(*conf, options))
          << dataset << " " << iv.ToString() << " conf=" << *conf;
    }
    // No false negatives vs exhaustive ground truth.
    const auto exact = interval::MakeGenerator(AlgorithmKind::kExhaustive)
                           ->Generate(eval, options, nullptr);
    std::map<int64_t, int64_t> by_begin;
    std::map<int64_t, int64_t> by_end;
    for (const Interval& iv : approx) {
      auto [it, inserted] = by_begin.emplace(iv.begin, iv.end);
      if (!inserted) it->second = std::max(it->second, iv.end);
      auto [it2, inserted2] = by_end.emplace(iv.end, iv.begin);
      if (!inserted2) it2->second = std::min(it2->second, iv.begin);
    }
    for (const Interval& optimal : exact) {
      if (!nab) {
        const auto it = by_begin.find(optimal.begin);
        ASSERT_NE(it, by_begin.end())
            << dataset << " anchor " << optimal.begin;
        EXPECT_GE(it->second, optimal.end) << dataset;
      } else if (type == TableauType::kHold) {
        // NAB anchors at right endpoints; ground truth per right anchor:
        int64_t i_star = optimal.begin;  // exhaustive's [i*, j] has j
                                         // maximal per i; re-derive per j:
        const int64_t j = optimal.end;
        for (int64_t i = j; i >= 1; --i) {
          const auto conf = eval.Confidence(i, j);
          if (conf.has_value() &&
              interval::PassesExactThreshold(*conf, options)) {
            i_star = i;
          }
        }
        const auto it = by_end.find(j);
        ASSERT_NE(it, by_end.end()) << dataset << " anchor j=" << j;
        EXPECT_LE(it->second, i_star) << dataset;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DatasetDifferential,
    ::testing::Combine(
        ::testing::Values("credit_card", "people_count", "router_bad", "tcp",
                          "joblog", "powergrid"),
        ::testing::Values(AlgorithmKind::kAreaBased,
                          AlgorithmKind::kAreaBasedOpt,
                          AlgorithmKind::kNonAreaBased,
                          AlgorithmKind::kNonAreaBasedOpt),
        ::testing::Values(TableauType::kHold, TableauType::kFail)));

// --- Preprocessing properties -----------------------------------------------

class DominanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DominanceProperty, EnforceDominanceInvariants) {
  util::Rng rng(GetParam());
  const int64_t n = 80;
  std::vector<double> a;
  std::vector<double> b;
  for (int64_t t = 0; t < n; ++t) {
    a.push_back(static_cast<double>(rng.Poisson(4.0)));
    b.push_back(static_cast<double>(rng.Poisson(4.0)));
  }
  auto counts = series::CountSequence::Create(a, b);
  ASSERT_TRUE(counts.ok());
  const series::CountSequence fixed = series::EnforceDominance(*counts);
  const series::CumulativeSeries after(fixed);
  EXPECT_TRUE(after.Dominates());

  // Idempotent.
  const series::CountSequence twice = series::EnforceDominance(fixed);
  for (int64_t t = 1; t <= n; ++t) {
    EXPECT_DOUBLE_EQ(twice.a(t), fixed.a(t));
    EXPECT_DOUBLE_EQ(twice.b(t), fixed.b(t));
  }

  // The swap preserves the pointwise min/max of the cumulative curves.
  const series::CumulativeSeries before(*counts);
  for (int64_t l = 1; l <= n; ++l) {
    EXPECT_NEAR(after.A(l), std::min(before.A(l), before.B(l)), 1e-9);
    EXPECT_NEAR(after.B(l), std::max(before.A(l), before.B(l)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceProperty,
                         ::testing::Values(100, 200, 300, 400, 500));

// --- CSV reader fuzz ---------------------------------------------------------

TEST(CsvFuzzTest, GarbageInputsNeverCrash) {
  util::Rng rng(4096);
  const std::string path = ::testing::TempDir() + "/fuzz.csv";
  const char alphabet[] = "0123456789.,-eE ab\n\r\t\";";
  for (int round = 0; round < 200; ++round) {
    {
      std::ofstream out(path);
      const int64_t length = rng.UniformInt(0, 400);
      std::string content;
      for (int64_t k = 0; k < length; ++k) {
        content += alphabet[rng.UniformInt(0, sizeof(alphabet) - 2)];
      }
      out << content;
    }
    io::CsvReadOptions options;
    options.skip_malformed_rows = rng.Bernoulli(0.5);
    options.has_header = rng.Bernoulli(0.5);
    // Must return ok or a clean error — never crash or hang.
    const auto result = io::ReadCountsCsv(path, options);
    if (result.ok()) {
      EXPECT_GE(result->n(), 1);
    }
  }
  std::remove(path.c_str());
}

// --- UnionSize property ------------------------------------------------------

class UnionSizeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionSizeProperty, MatchesBitmap) {
  util::Rng rng(GetParam());
  const int64_t n = 100;
  std::vector<Interval> intervals;
  const int count = static_cast<int>(rng.UniformInt(0, 15));
  std::vector<bool> bitmap(static_cast<size_t>(n) + 1, false);
  for (int k = 0; k < count; ++k) {
    const int64_t begin = rng.UniformInt(1, n);
    const int64_t end = std::min<int64_t>(n, begin + rng.UniformInt(0, 30));
    intervals.push_back(Interval{begin, end});
    for (int64_t t = begin; t <= end; ++t) bitmap[static_cast<size_t>(t)] = true;
  }
  const int64_t expected =
      std::count(bitmap.begin(), bitmap.end(), true);
  EXPECT_EQ(interval::UnionSize(intervals), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionSizeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace conservation
