#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace conservation::obs {
namespace {

// Tests share the global registry, so every metric name is unique to its
// test case and counters are reset where totals are asserted.

TEST(CounterTest, AddAndIncrement) {
  Counter& counter = Registry::Global().Counter("test.counter.basic");
  counter.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  EXPECT_EQ(counter.name(), "test.counter.basic");
}

TEST(CounterTest, LookupReturnsSameHandle) {
  Counter& a = Registry::Global().Counter("test.counter.same");
  Counter& b = Registry::Global().Counter("test.counter.same");
  EXPECT_EQ(&a, &b);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter& counter = Registry::Global().Counter("test.counter.concurrent");
  counter.ResetForTest();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t k = 0; k < kPerThread; ++k) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactness is the contract: striping may share cells between threads but
  // every increment is an atomic RMW, so none are ever lost.
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, SnapshotDuringUpdatesIsMonotoneAndTornFree) {
  Counter& counter = Registry::Global().Counter("test.counter.torn");
  counter.ResetForTest();
  constexpr uint64_t kTotal = 200000;
  std::atomic<bool> done{false};
  std::thread writer([&counter, &done] {
    for (uint64_t k = 0; k < kTotal; ++k) counter.Increment();
    done.store(true, std::memory_order_release);
  });
  // Each cell is a 64-bit atomic, so no snapshot can see a half-written
  // value; totals only grow while a single writer runs.
  uint64_t last = 0;
  while (!done.load(std::memory_order_acquire)) {
    const uint64_t now = counter.Value();
    EXPECT_GE(now, last);
    EXPECT_LE(now, kTotal);
    last = now;
  }
  writer.join();
  EXPECT_EQ(counter.Value(), kTotal);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge& gauge = Registry::Global().Gauge("test.gauge.basic");
  gauge.Set(1.5);
  gauge.Set(-3.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), -3.25);
  gauge.ResetForTest();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketBoundarySemantics) {
  // Bounds {10, 20, 30}: bucket 0 <- v < 10; bucket 1 <- 10 <= v < 20;
  // bucket 2 <- 20 <= v < 30; bucket 3 (overflow) <- v >= 30.
  Histogram& histogram =
      Registry::Global().Histogram("test.histogram.bounds", {10.0, 20.0, 30.0});
  histogram.ResetForTest();
  ASSERT_EQ(histogram.bounds().size(), 3u);

  histogram.Record(0.0);    // bucket 0
  histogram.Record(9.999);  // bucket 0
  histogram.Record(10.0);   // bucket 1: lower bound is inclusive
  histogram.Record(19.0);   // bucket 1
  histogram.Record(20.0);   // bucket 2
  histogram.Record(29.0);   // bucket 2
  histogram.Record(30.0);   // overflow: top bound is exclusive below
  histogram.Record(1e9);    // overflow

  const std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // m + 1 buckets
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(histogram.TotalCount(), 8u);
  EXPECT_DOUBLE_EQ(histogram.Sum(),
                   0.0 + 9.999 + 10.0 + 19.0 + 20.0 + 29.0 + 30.0 + 1e9);
}

TEST(HistogramTest, ConcurrentRecordsSumExactly) {
  Histogram& histogram =
      Registry::Global().Histogram("test.histogram.concurrent", {1.0, 2.0});
  histogram.ResetForTest();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (uint64_t k = 0; k < kPerThread; ++k) {
        histogram.Record(static_cast<double>(k % 3));  // buckets 0, 1, 2
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.TotalCount(), kThreads * kPerThread);
  const std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  uint64_t total = 0;
  for (const uint64_t count : counts) total += count;
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(RegistryTest, SnapshotCarriesAllKindsSorted) {
  Registry& registry = Registry::Global();
  registry.Counter("test.snap.b").Increment();
  registry.Counter("test.snap.a").Add(2);
  registry.Gauge("test.snap.gauge").Set(7.5);
  registry.Histogram("test.snap.histogram", {5.0}).Record(3.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  // Sorted by name within each kind (deterministic serialization).
  for (size_t k = 1; k < snapshot.counters.size(); ++k) {
    EXPECT_LT(snapshot.counters[k - 1].first, snapshot.counters[k].first);
  }
  auto counter_value = [&snapshot](const std::string& name) -> uint64_t {
    for (const auto& [key, value] : snapshot.counters) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_GE(counter_value("test.snap.a"), 2u);
  EXPECT_GE(counter_value("test.snap.b"), 1u);

  bool found_gauge = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "test.snap.gauge") {
      EXPECT_DOUBLE_EQ(value, 7.5);
      found_gauge = true;
    }
  }
  EXPECT_TRUE(found_gauge);

  bool found_histogram = false;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name != "test.snap.histogram") continue;
    found_histogram = true;
    ASSERT_EQ(h.bounds.size(), 1u);
    ASSERT_EQ(h.counts.size(), 2u);
    EXPECT_GE(h.total_count, 1u);
  }
  EXPECT_TRUE(found_histogram);
}

TEST(RegistryTest, SnapshotToJsonIsWellFormed) {
  Registry& registry = Registry::Global();
  registry.Counter("test.json.counter").Increment();
  registry.Gauge("test.json.gauge").Set(1.0);
  registry.Histogram("test.json.histogram", {1.0, 2.0}).Record(0.5);
  const std::string json = registry.Snapshot().ToJson();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[1,2]"), std::string::npos);

  // Balanced braces/brackets outside strings => structurally sound. The
  // walk is string-aware: labeled metric names (obs/labels.h) put literal
  // braces and quotes inside JSON strings, which must not count.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(RegistryTest, ResetForTestZeroesEverything) {
  Registry& registry = Registry::Global();
  obs::Counter& counter = registry.Counter("test.reset.counter");
  obs::Histogram& histogram = registry.Histogram("test.reset.histogram", {1.0});
  counter.Add(5);
  histogram.Record(0.5);
  registry.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(histogram.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
}

TEST(CounterTest, StripeCollisionsWithMoreThreadsThanStripesSumExactly) {
  // More threads than stripes forces ThreadIndex() % kStripes collisions:
  // several threads share one atomic cell, and exactness must come from
  // the RMW, not from accidental cell privacy.
  Counter& counter = Registry::Global().Counter("test.counter.stripes");
  counter.ResetForTest();
  constexpr int kThreads = 3 * kStripes;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t k = 0; k < kPerThread; ++k) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, StripeCollisionsWithMoreThreadsThanStripesSumExactly) {
  Histogram& histogram = Registry::Global().Histogram(
      "test.histogram.stripes", {1.0, 2.0});
  histogram.ResetForTest();
  constexpr int kThreads = 2 * kStripes + 1;  // odd: uneven stripe sharing
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (uint64_t k = 0; k < kPerThread; ++k) {
        histogram.Record(static_cast<double>(k % 3));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.TotalCount(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ThreadIndexTest, StablePerThreadAndDistinctAcrossThreads) {
  const int main_index = ThreadIndex();
  EXPECT_EQ(ThreadIndex(), main_index);  // stable within a thread
  int other_index = -1;
  std::thread other([&other_index] { other_index = ThreadIndex(); });
  other.join();
  EXPECT_NE(other_index, main_index);
  EXPECT_GE(other_index, 0);
}

}  // namespace
}  // namespace conservation::obs
