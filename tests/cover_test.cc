#include <gtest/gtest.h>

#include <algorithm>

#include "cover/partial_set_cover.h"
#include "util/random.h"

namespace conservation::cover {
namespace {

using interval::Interval;

TEST(PartialSetCoverTest, SingleIntervalCoversAll) {
  const CoverResult result =
      GreedyPartialSetCover({{1, 10}}, 10, CoverOptions{1.0, true});
  ASSERT_EQ(result.chosen.size(), 1u);
  EXPECT_EQ(result.covered, 10);
  EXPECT_TRUE(result.satisfied);
}

TEST(PartialSetCoverTest, PicksLargestFirst) {
  CoverOptions options;
  options.s_hat = 0.5;
  const CoverResult result =
      GreedyPartialSetCover({{1, 2}, {4, 9}, {3, 4}}, 10, options);
  ASSERT_EQ(result.chosen.size(), 1u);
  EXPECT_EQ(result.chosen[0], (Interval{4, 9}));
  EXPECT_EQ(result.covered, 6);
  EXPECT_TRUE(result.satisfied);
}

TEST(PartialSetCoverTest, MarginalCoverageNotRawSize) {
  // After [1, 6], the interval [5, 9] adds 4 while [7, 8] adds 2; greedy
  // must rank by marginal gain.
  CoverOptions options;
  options.s_hat = 1.0;
  const CoverResult result =
      GreedyPartialSetCover({{1, 6}, {5, 9}, {7, 8}, {10, 10}}, 10, options);
  EXPECT_TRUE(result.satisfied);
  ASSERT_EQ(result.chosen.size(), 3u);
  EXPECT_TRUE(std::find(result.chosen.begin(), result.chosen.end(),
                        Interval{5, 9}) != result.chosen.end());
  EXPECT_TRUE(std::find(result.chosen.begin(), result.chosen.end(),
                        Interval{7, 8}) == result.chosen.end());
}

TEST(PartialSetCoverTest, UnsatisfiableReportsPartialCoverage) {
  CoverOptions options;
  options.s_hat = 0.9;
  const CoverResult result =
      GreedyPartialSetCover({{1, 2}, {5, 6}}, 10, options);
  EXPECT_FALSE(result.satisfied);
  EXPECT_EQ(result.covered, 4);
  EXPECT_EQ(result.required, 9);
  EXPECT_EQ(result.chosen.size(), 2u);
}

TEST(PartialSetCoverTest, ZeroSupportChoosesNothing) {
  CoverOptions options;
  options.s_hat = 0.0;
  const CoverResult result = GreedyPartialSetCover({{1, 5}}, 10, options);
  EXPECT_TRUE(result.satisfied);
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_EQ(result.required, 0);
}

TEST(PartialSetCoverTest, NoCandidates) {
  CoverOptions options;
  options.s_hat = 0.5;
  const CoverResult result = GreedyPartialSetCover({}, 10, options);
  EXPECT_FALSE(result.satisfied);
  EXPECT_EQ(result.covered, 0);
}

TEST(PartialSetCoverTest, StopsOnceSupportReached) {
  CoverOptions options;
  options.s_hat = 0.3;  // needs ceil(3) = 3 ticks
  const CoverResult result =
      GreedyPartialSetCover({{1, 4}, {6, 9}}, 10, options);
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.chosen.size(), 1u);
}

TEST(PartialSetCoverTest, DeterministicTieBreakPrefersEarlierInterval) {
  CoverOptions options;
  options.s_hat = 0.3;
  const CoverResult result =
      GreedyPartialSetCover({{7, 9}, {2, 4}}, 10, options);
  ASSERT_EQ(result.chosen.size(), 1u);
  EXPECT_EQ(result.chosen[0], (Interval{2, 4}));
}

TEST(PartialSetCoverTest, DuplicateCandidatesHandled) {
  CoverOptions options;
  options.s_hat = 1.0;
  const CoverResult result =
      GreedyPartialSetCover({{1, 5}, {1, 5}, {6, 10}}, 10, options);
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.chosen.size(), 2u);
}

// Greedy never uses more than H(n) * OPT intervals; for interval instances
// on a line greedy is in fact near-optimal. Compare against brute force on
// small random instances.
class CoverProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverProperty, GreedyWithinConstantOfBruteForceOptimum) {
  util::Rng rng(GetParam());
  const int64_t n = 30;
  std::vector<Interval> candidates;
  const int num_candidates = 10;
  for (int k = 0; k < num_candidates; ++k) {
    const int64_t begin = rng.UniformInt(1, n);
    const int64_t end = std::min<int64_t>(n, begin + rng.UniformInt(0, 12));
    candidates.push_back(Interval{begin, end});
  }
  CoverOptions options;
  options.s_hat = 0.5;
  const CoverResult greedy = GreedyPartialSetCover(candidates, n, options);

  // Brute force the smallest satisfying subset.
  const int64_t required = greedy.required;
  size_t best = candidates.size() + 1;
  bool feasible = false;
  for (uint32_t mask = 0; mask < (1u << num_candidates); ++mask) {
    std::vector<Interval> subset;
    for (int k = 0; k < num_candidates; ++k) {
      if (mask & (1u << k)) subset.push_back(candidates[k]);
    }
    if (interval::UnionSize(subset) >= required) {
      feasible = true;
      best = std::min(best, subset.size());
    }
  }

  ASSERT_EQ(greedy.satisfied, feasible);
  if (feasible) {
    // ln(30) ~ 3.4; greedy on intervals is empirically within 2x.
    EXPECT_LE(greedy.chosen.size(), 2 * best + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace conservation::cover
