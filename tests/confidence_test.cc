#include <gtest/gtest.h>

#include "core/confidence.h"
#include "series/cumulative.h"
#include "series/sequence.h"
#include "util/random.h"

namespace conservation::core {
namespace {

using series::CountSequence;
using series::CumulativeSeries;

// Paper Figure 2: a = <2,0,1,1,2> (outbound), b = <3,1,1,2,0> (inbound).
// I = [2, 4] (the paper writes it half-open as [2, 5)).
class PaperFigure2Confidence : public ::testing::Test {
 protected:
  PaperFigure2Confidence()
      : counts_(*CountSequence::Create({2, 0, 1, 1, 2}, {3, 1, 1, 2, 0})),
        cumulative_(counts_) {}

  CountSequence counts_;
  CumulativeSeries cumulative_;
};

TEST_F(PaperFigure2Confidence, BalanceModelIsThreeTenths) {
  const ConfidenceEvaluator eval(&cumulative_, ConfidenceModel::kBalance);
  EXPECT_DOUBLE_EQ(eval.AreaA(2, 4), 3.0);
  EXPECT_DOUBLE_EQ(eval.AreaB(2, 4), 10.0);
  ASSERT_TRUE(eval.Confidence(2, 4).has_value());
  EXPECT_DOUBLE_EQ(*eval.Confidence(2, 4), 0.3);
}

TEST_F(PaperFigure2Confidence, DebitModelIsThreeSevenths) {
  const ConfidenceEvaluator eval(&cumulative_, ConfidenceModel::kDebit);
  // S_2 = min_{k>=2}(B_k - A_k) = 1; B is shifted down by 1.
  EXPECT_DOUBLE_EQ(eval.AreaA(2, 4), 3.0);
  EXPECT_DOUBLE_EQ(eval.AreaB(2, 4), 7.0);
  EXPECT_DOUBLE_EQ(*eval.Confidence(2, 4), 3.0 / 7.0);
}

TEST_F(PaperFigure2Confidence, CreditModelIsSixTenths) {
  const ConfidenceEvaluator eval(&cumulative_, ConfidenceModel::kCredit);
  // A is shifted up by S_2 = 1.
  EXPECT_DOUBLE_EQ(eval.AreaA(2, 4), 6.0);
  EXPECT_DOUBLE_EQ(eval.AreaB(2, 4), 10.0);
  EXPECT_DOUBLE_EQ(*eval.Confidence(2, 4), 0.6);
}

TEST_F(PaperFigure2Confidence, BaselinesMatchDefinitions) {
  const ConfidenceEvaluator balance(&cumulative_, ConfidenceModel::kBalance);
  const ConfidenceEvaluator credit(&cumulative_, ConfidenceModel::kCredit);
  const ConfidenceEvaluator debit(&cumulative_, ConfidenceModel::kDebit);
  // i = 2: A_1 = 2, S_2 = 1.
  EXPECT_DOUBLE_EQ(balance.BaselineA(2), 2.0);
  EXPECT_DOUBLE_EQ(balance.BaselineB(2), 2.0);
  EXPECT_DOUBLE_EQ(credit.BaselineA(2), 1.0);
  EXPECT_DOUBLE_EQ(credit.BaselineB(2), 2.0);
  EXPECT_DOUBLE_EQ(debit.BaselineA(2), 2.0);
  EXPECT_DOUBLE_EQ(debit.BaselineB(2), 3.0);
}

TEST_F(PaperFigure2Confidence, ZeroOutboundIntervalHasZeroBalanceConfidence) {
  // The balance model's motivating requirement (§II): if A stays flat in I,
  // conf must be 0 regardless of history.
  auto counts = CountSequence::Create({3, 0, 0, 1}, {3, 2, 2, 2});
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);
  EXPECT_DOUBLE_EQ(*eval.Confidence(2, 3), 0.0);
}

TEST_F(PaperFigure2Confidence, UndefinedWhenDenominatorZero) {
  // With no inbound mass above the baseline, confidence is undefined.
  auto flat = CountSequence::Create({2, 0}, {2, 0});
  ASSERT_TRUE(flat.ok());
  const CumulativeSeries flat_cumulative(*flat);
  const ConfidenceEvaluator flat_eval(&flat_cumulative,
                                      ConfidenceModel::kBalance);
  // [2, 2]: baseline A_1 = 2, B_2 = 2 -> areaB = 0 -> undefined.
  EXPECT_FALSE(flat_eval.Confidence(2, 2).has_value());
}

// Property sweep: on random dominated integer data, all three models yield
// confidences in [0, 1] whenever defined, and credit >= balance, while
// debit's and credit's discounting never increases the implied delay
// penalty relative to balance (conf_d >= conf_b, conf_c >= conf_b).
class ConfidenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConfidenceProperty, ModelsAreBoundedAndOrdered) {
  util::Rng rng(GetParam());
  const int64_t n = 60;
  std::vector<double> a;
  std::vector<double> b;
  double slack = 0.0;  // cumulative B - A, kept non-negative
  for (int64_t t = 0; t < n; ++t) {
    const double inbound = static_cast<double>(rng.Poisson(5.0));
    // Outbound cannot exceed available slack + current inbound.
    const double max_out = slack + inbound;
    double outbound = static_cast<double>(
        rng.UniformInt(0, static_cast<int64_t>(max_out)));
    b.push_back(inbound);
    a.push_back(outbound);
    slack += inbound - outbound;
  }
  auto counts = CountSequence::Create(std::move(a), std::move(b));
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  ASSERT_TRUE(cumulative.Dominates());

  const ConfidenceEvaluator balance(&cumulative, ConfidenceModel::kBalance);
  const ConfidenceEvaluator credit(&cumulative, ConfidenceModel::kCredit);
  const ConfidenceEvaluator debit(&cumulative, ConfidenceModel::kDebit);

  for (int64_t i = 1; i <= n; i += 3) {
    for (int64_t j = i; j <= n; j += 2) {
      for (const ConfidenceEvaluator* eval : {&balance, &credit, &debit}) {
        const std::optional<double> conf = eval->Confidence(i, j);
        if (conf.has_value()) {
          EXPECT_GE(*conf, 0.0) << "i=" << i << " j=" << j;
          EXPECT_LE(*conf, 1.0 + 1e-12) << "i=" << i << " j=" << j;
        }
      }
      const auto conf_b = balance.Confidence(i, j);
      const auto conf_c = credit.Confidence(i, j);
      const auto conf_d = debit.Confidence(i, j);
      if (conf_b.has_value() && conf_c.has_value()) {
        EXPECT_GE(*conf_c, *conf_b - 1e-12);
      }
      if (conf_b.has_value() && conf_d.has_value()) {
        EXPECT_GE(*conf_d, *conf_b - 1e-12);
      }
    }
  }
}

TEST_P(ConfidenceProperty, AreaClosedFormMatchesDirectSummation) {
  util::Rng rng(GetParam() + 1000);
  const int64_t n = 40;
  std::vector<double> a;
  std::vector<double> b;
  for (int64_t t = 0; t < n; ++t) {
    a.push_back(static_cast<double>(rng.Poisson(3.0)));
    b.push_back(a.back() + static_cast<double>(rng.Poisson(2.0)));
  }
  auto counts = CountSequence::Create(std::move(a), std::move(b));
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  ASSERT_TRUE(cumulative.Dominates());

  for (const ConfidenceModel model :
       {ConfidenceModel::kBalance, ConfidenceModel::kCredit,
        ConfidenceModel::kDebit}) {
    const ConfidenceEvaluator eval(&cumulative, model);
    for (int64_t i = 1; i <= n; i += 5) {
      for (int64_t j = i; j <= n; j += 3) {
        double direct_a = 0.0;
        double direct_b = 0.0;
        for (int64_t l = i; l <= j; ++l) {
          direct_a += cumulative.A(l) - eval.BaselineA(i);
          direct_b += cumulative.B(l) - eval.BaselineB(i);
        }
        EXPECT_NEAR(eval.AreaA(i, j), std::max(direct_a, 0.0), 1e-7);
        EXPECT_NEAR(eval.AreaB(i, j), std::max(direct_b, 0.0), 1e-7);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfidenceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace conservation::core
