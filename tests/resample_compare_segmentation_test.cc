// Tests for the analyst-layer utilities: resampling, interval-set
// comparison, and calendar segmentation.

#include <gtest/gtest.h>

#include "core/segmentation.h"
#include "interval/compare.h"
#include "series/cumulative.h"
#include "series/resample.h"
#include "tests/test_data.h"

namespace conservation {
namespace {

using interval::Interval;

// --- Downsample --------------------------------------------------------------

TEST(ResampleTest, SumsWithinBuckets) {
  auto counts = series::CountSequence::Create({1, 2, 3, 4, 5, 6},
                                              {6, 5, 4, 3, 2, 1});
  ASSERT_TRUE(counts.ok());
  series::ResampleOptions options;
  options.factor = 2;
  const series::CountSequence coarse =
      series::Downsample(*counts, options);
  ASSERT_EQ(coarse.n(), 3);
  EXPECT_DOUBLE_EQ(coarse.a(1), 3.0);
  EXPECT_DOUBLE_EQ(coarse.a(3), 11.0);
  EXPECT_DOUBLE_EQ(coarse.b(1), 11.0);
  EXPECT_DOUBLE_EQ(coarse.b(3), 3.0);
}

TEST(ResampleTest, PartialTailKeptOrDropped) {
  auto counts = series::CountSequence::Create({1, 1, 1, 1, 1},
                                              {1, 1, 1, 1, 1});
  ASSERT_TRUE(counts.ok());
  series::ResampleOptions keep;
  keep.factor = 2;
  EXPECT_EQ(series::Downsample(*counts, keep).n(), 3);
  series::ResampleOptions drop = keep;
  drop.keep_partial_tail = false;
  EXPECT_EQ(series::Downsample(*counts, drop).n(), 2);
}

TEST(ResampleTest, FactorOneIsIdentity) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(5, 30);
  const series::CountSequence coarse =
      series::Downsample(counts, series::ResampleOptions{});
  ASSERT_EQ(coarse.n(), counts.n());
  for (int64_t t = 1; t <= counts.n(); ++t) {
    EXPECT_DOUBLE_EQ(coarse.a(t), counts.a(t));
    EXPECT_DOUBLE_EQ(coarse.b(t), counts.b(t));
  }
}

TEST(ResampleTest, PreservesTotalsAndDominance) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(9, 101);
  series::ResampleOptions options;
  options.factor = 7;
  const series::CountSequence coarse = series::Downsample(counts, options);
  const series::CumulativeSeries fine_cumulative(counts);
  const series::CumulativeSeries coarse_cumulative(coarse);
  EXPECT_DOUBLE_EQ(coarse_cumulative.A(coarse.n()),
                   fine_cumulative.A(counts.n()));
  EXPECT_DOUBLE_EQ(coarse_cumulative.B(coarse.n()),
                   fine_cumulative.B(counts.n()));
  EXPECT_TRUE(coarse_cumulative.Dominates());
}

TEST(ResampleTest, CoarseningAbsorbsSubBucketDelay) {
  // A one-tick delay inside a bucket disappears after coarsening.
  auto counts = series::CountSequence::Create({0, 8, 0, 8}, {8, 0, 8, 0});
  ASSERT_TRUE(counts.ok());
  const series::CumulativeSeries fine(*counts);
  const core::ConfidenceEvaluator fine_eval(&fine,
                                            core::ConfidenceModel::kBalance);
  EXPECT_LT(*fine_eval.Confidence(1, 4), 1.0);

  series::ResampleOptions options;
  options.factor = 2;
  const series::CountSequence coarse = series::Downsample(*counts, options);
  const series::CumulativeSeries coarse_cumulative(coarse);
  const core::ConfidenceEvaluator coarse_eval(
      &coarse_cumulative, core::ConfidenceModel::kBalance);
  EXPECT_DOUBLE_EQ(*coarse_eval.Confidence(1, 2), 1.0);
}

TEST(ResampleTest, NativeRangeMapsBack) {
  series::ResampleOptions options;
  options.factor = 4;
  const auto range = series::NativeRange(3, options, 11);
  EXPECT_EQ(range.first, 9);
  EXPECT_EQ(range.last, 11);  // clamped tail
  const auto first = series::NativeRange(1, options, 11);
  EXPECT_EQ(first.first, 1);
  EXPECT_EQ(first.last, 4);
}

// --- Interval-set comparison -------------------------------------------------

TEST(CompareTest, JaccardBasics) {
  EXPECT_DOUBLE_EQ(interval::IntervalJaccard({1, 4}, {1, 4}), 1.0);
  EXPECT_DOUBLE_EQ(interval::IntervalJaccard({1, 4}, {5, 8}), 0.0);
  EXPECT_DOUBLE_EQ(interval::IntervalJaccard({1, 4}, {3, 6}), 2.0 / 6.0);
}

TEST(CompareTest, IdenticalSets) {
  const std::vector<Interval> set = {{1, 5}, {8, 9}};
  const auto result = interval::CompareIntervalSets(set, set);
  EXPECT_EQ(result.identical, 2u);
  EXPECT_EQ(result.overlapping, 0u);
  EXPECT_EQ(result.unmatched, 0u);
  EXPECT_DOUBLE_EQ(result.coverage_jaccard, 1.0);
}

TEST(CompareTest, OverlapAndUnmatched) {
  const std::vector<Interval> lhs = {{1, 10}, {20, 25}, {40, 41}};
  const std::vector<Interval> rhs = {{1, 10}, {21, 26}};
  const auto result = interval::CompareIntervalSets(lhs, rhs);
  EXPECT_EQ(result.identical, 1u);
  EXPECT_EQ(result.overlapping, 1u);  // [20,25] vs [21,26]
  EXPECT_EQ(result.unmatched, 1u);    // [40,41]
  EXPECT_NEAR(result.mean_jaccard, 5.0 / 7.0, 1e-12);
  // Coverage: lhs covers 10+6+2=18, rhs 10+6=16, both: 10+5=15,
  // either: 18+16-15=19.
  EXPECT_NEAR(result.coverage_jaccard, 15.0 / 19.0, 1e-12);
}

TEST(CompareTest, EmptySets) {
  const auto both_empty = interval::CompareIntervalSets({}, {});
  EXPECT_DOUBLE_EQ(both_empty.coverage_jaccard, 1.0);
  const auto one_empty = interval::CompareIntervalSets({{1, 3}}, {});
  EXPECT_EQ(one_empty.unmatched, 1u);
  EXPECT_DOUBLE_EQ(one_empty.coverage_jaccard, 0.0);
}

TEST(CompareTest, OverlappingInputsWithinOneSet) {
  // Coverage computation must coalesce overlapping intervals per side.
  const std::vector<Interval> lhs = {{1, 6}, {4, 10}};
  const std::vector<Interval> rhs = {{1, 10}};
  const auto result = interval::CompareIntervalSets(lhs, rhs);
  EXPECT_DOUBLE_EQ(result.coverage_jaccard, 1.0);
}

// --- Segmentation -------------------------------------------------------------

TEST(SegmentationTest, UniformSegments) {
  const auto segments = core::UniformSegments(10, 4);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].range, (Interval{1, 4}));
  EXPECT_EQ(segments[2].range, (Interval{9, 10}));
  EXPECT_EQ(segments[0].label, "seg 000");
}

TEST(SegmentationTest, SummariesMatchDirectEvaluation) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(77, 60);
  auto rule = core::ConservationRule::Create(counts);
  ASSERT_TRUE(rule.ok());
  const auto segments = core::UniformSegments(60, 15);
  const auto summaries = core::SummarizeSegments(
      *rule, core::ConfidenceModel::kBalance, segments);
  ASSERT_EQ(summaries.size(), 4u);
  const core::ConfidenceEvaluator eval =
      rule->Evaluator(core::ConfidenceModel::kBalance);
  for (const core::SegmentSummary& summary : summaries) {
    const auto direct = eval.Confidence(summary.segment.range.begin,
                                        summary.segment.range.end);
    EXPECT_EQ(summary.confidence.has_value(), direct.has_value());
    if (direct.has_value()) {
      EXPECT_DOUBLE_EQ(*summary.confidence, *direct);
    }
    EXPECT_GE(summary.misplaced_mass, -1e-9);
  }
}

TEST(SegmentationTest, SegmentLocalMaximal) {
  const std::vector<Interval> candidates = {
      {2, 5}, {3, 5}, {4, 9}, {12, 14}, {1, 20}};
  const auto local = core::SegmentLocalMaximal(candidates, {1, 10});
  // {1,20} crosses the boundary; {3,5} ⊂ {2,5}; survivors: {2,5}, {4,9}.
  ASSERT_EQ(local.size(), 2u);
  EXPECT_EQ(local[0], (Interval{2, 5}));
  EXPECT_EQ(local[1], (Interval{4, 9}));
}

TEST(SegmentationTest, SegmentLocalMaximalEmpty) {
  EXPECT_TRUE(core::SegmentLocalMaximal({}, {1, 10}).empty());
  EXPECT_TRUE(
      core::SegmentLocalMaximal({{11, 12}}, {1, 10}).empty());
}

}  // namespace
}  // namespace conservation
