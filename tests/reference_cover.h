// ReferenceGreedyPartialSetCover: the naive O(rounds * (n + m)) greedy
// partial set cover that src/cover/partial_set_cover.cc replaced with the
// lazy-heap + Fenwick implementation. Preserved verbatim (modulo the
// chosen_indices bookkeeping the new CoverResult carries) as the ground
// truth for the differential test and as the "naive" competitor in
// bench_cover_scaling: every pick rescans all candidates and rebuilds the
// covered prefix sums, and marking walks every tick of the pick.
//
// The lazy implementation must be BIT-IDENTICAL to this one — same chosen
// intervals in the same order, same covered/required/satisfied — for both
// tie-break modes (DESIGN.md "Lazy greedy cover").

#ifndef CONSERVATION_TESTS_REFERENCE_COVER_H_
#define CONSERVATION_TESTS_REFERENCE_COVER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cover/partial_set_cover.h"
#include "interval/interval.h"
#include "util/check.h"

namespace conservation::cover {

inline CoverResult ReferenceGreedyPartialSetCover(
    const std::vector<interval::Interval>& candidates, int64_t n,
    const CoverOptions& options) {
  CR_CHECK(n >= 1);
  CR_CHECK(options.s_hat >= 0.0 && options.s_hat <= 1.0);
  for (const interval::Interval& iv : candidates) {
    CR_CHECK(iv.begin >= 1 && iv.begin <= iv.end && iv.end <= n);
  }

  CoverResult result;
  result.required = static_cast<int64_t>(
      std::ceil(options.s_hat * static_cast<double>(n)));

  std::vector<bool> covered(static_cast<size_t>(n) + 1, false);
  std::vector<int64_t> covered_prefix(static_cast<size_t>(n) + 1, 0);
  std::vector<bool> used(candidates.size(), false);
  std::vector<size_t> picked;

  while (result.covered < result.required) {
    // Rebuild the covered prefix sums for O(1) marginal-coverage queries.
    for (int64_t t = 1; t <= n; ++t) {
      covered_prefix[static_cast<size_t>(t)] =
          covered_prefix[static_cast<size_t>(t - 1)] +
          (covered[static_cast<size_t>(t)] ? 1 : 0);
    }

    int64_t best_gain = 0;
    size_t best_index = candidates.size();
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (used[k]) continue;
      const interval::Interval& iv = candidates[k];
      const int64_t already =
          covered_prefix[static_cast<size_t>(iv.end)] -
          covered_prefix[static_cast<size_t>(iv.begin - 1)];
      const int64_t gain = iv.length() - already;
      bool better = gain > best_gain;
      if (options.deterministic_tie_break && gain == best_gain && gain > 0 &&
          best_index < candidates.size()) {
        better = interval::ByPosition(iv, candidates[best_index]);
      }
      if (better) {
        best_gain = gain;
        best_index = k;
      }
    }

    if (best_index == candidates.size() || best_gain == 0) {
      break;  // no candidate adds coverage; requirement unreachable
    }

    used[best_index] = true;
    picked.push_back(best_index);
    const interval::Interval& pick = candidates[best_index];
    for (int64_t t = pick.begin; t <= pick.end; ++t) {
      if (!covered[static_cast<size_t>(t)]) {
        covered[static_cast<size_t>(t)] = true;
        ++result.covered;
      }
    }
  }

  result.satisfied = result.covered >= result.required;
  std::sort(picked.begin(), picked.end(), [&candidates](size_t a, size_t b) {
    return interval::ByPosition(candidates[a], candidates[b]);
  });
  result.chosen.reserve(picked.size());
  result.chosen_indices.reserve(picked.size());
  for (const size_t index : picked) {
    result.chosen.push_back(candidates[index]);
    result.chosen_indices.push_back(index);
  }
  return result;
}

}  // namespace conservation::cover

#endif  // CONSERVATION_TESTS_REFERENCE_COVER_H_
