#include <gtest/gtest.h>

#include "core/conservation_rule.h"
#include "core/tableau.h"
#include "tests/test_data.h"

namespace conservation::core {
namespace {

TEST(TableauTest, RejectsBadThresholds) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(1, 30);
  auto rule = ConservationRule::Create(counts);
  ASSERT_TRUE(rule.ok());

  TableauRequest request;
  request.c_hat = 1.5;
  EXPECT_FALSE(rule->DiscoverTableau(request).ok());
  request.c_hat = 0.8;
  request.s_hat = -0.1;
  EXPECT_FALSE(rule->DiscoverTableau(request).ok());
  request.s_hat = 0.5;
  request.epsilon = 0.0;
  EXPECT_FALSE(rule->DiscoverTableau(request).ok());
}

TEST(TableauTest, RejectsNabWithNonBalanceModel) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(2, 30);
  auto rule = ConservationRule::Create(counts);
  ASSERT_TRUE(rule.ok());

  TableauRequest request;
  request.algorithm = interval::AlgorithmKind::kNonAreaBased;
  request.model = ConfidenceModel::kCredit;
  auto result = rule->DiscoverTableau(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(TableauTest, ExhaustiveIgnoresEpsilonValidation) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(3, 30);
  auto rule = ConservationRule::Create(counts);
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  request.algorithm = interval::AlgorithmKind::kExhaustive;
  request.epsilon = 0.0;
  EXPECT_TRUE(rule->DiscoverTableau(request).ok());
}

TEST(TableauTest, HoldTableauOnPerfectDataIsOneInterval) {
  auto rule = ConservationRule::Create({5, 5, 5, 5}, {5, 5, 5, 5});
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  request.type = TableauType::kHold;
  request.c_hat = 0.99;
  request.s_hat = 1.0;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  ASSERT_EQ(tableau->size(), 1u);
  EXPECT_EQ(tableau->rows[0].interval, (interval::Interval{1, 4}));
  EXPECT_DOUBLE_EQ(tableau->rows[0].confidence, 1.0);
  EXPECT_TRUE(tableau->support_satisfied);
  EXPECT_EQ(tableau->covered, 4);
}

TEST(TableauTest, FailTableauFlagsLossPeriod) {
  // Outbound dies at ticks 5..8.
  std::vector<double> a = {9, 9, 9, 9, 0, 0, 0, 0, 9, 9, 9, 9};
  std::vector<double> b = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  auto rule = ConservationRule::Create(a, b);
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  request.type = TableauType::kFail;
  request.c_hat = 0.2;
  request.s_hat = 0.25;  // needs 3 ticks
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  EXPECT_TRUE(tableau->support_satisfied);
  ASSERT_GE(tableau->size(), 1u);
  // The chosen intervals must lie within/around the dead zone.
  for (const TableauRow& row : tableau->rows) {
    EXPECT_GE(row.interval.begin, 5);
    EXPECT_LE(row.confidence, 0.2 * (1.0 + request.epsilon) + 1e-12);
  }
}

TEST(TableauTest, SupportUnsatisfiableIsReported) {
  auto rule = ConservationRule::Create({5, 5, 5, 5}, {5, 5, 5, 5});
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  request.type = TableauType::kFail;  // nothing fails on perfect data
  request.c_hat = 0.1;
  request.s_hat = 0.5;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  EXPECT_FALSE(tableau->support_satisfied);
  EXPECT_EQ(tableau->covered, 0);
}

TEST(TableauTest, AllAlgorithmsAgreeOnCleanData) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(7, 120);
  auto rule = ConservationRule::Create(counts);
  ASSERT_TRUE(rule.ok());

  TableauRequest request;
  request.type = TableauType::kHold;
  request.c_hat = 0.7;
  request.s_hat = 0.4;
  request.epsilon = 0.01;

  std::optional<int64_t> covered;
  for (const auto algorithm :
       {interval::AlgorithmKind::kExhaustive,
        interval::AlgorithmKind::kAreaBased,
        interval::AlgorithmKind::kAreaBasedOpt,
        interval::AlgorithmKind::kNonAreaBased,
        interval::AlgorithmKind::kNonAreaBasedOpt}) {
    request.algorithm = algorithm;
    auto tableau = rule->DiscoverTableau(request);
    ASSERT_TRUE(tableau.ok()) << interval::AlgorithmKindName(algorithm);
    // Coverage satisfaction must agree across algorithms (the approximate
    // ones can only produce intervals at least as long).
    if (!covered.has_value()) {
      covered = tableau->covered;
    } else {
      EXPECT_GE(tableau->covered + 2, *covered)
          << interval::AlgorithmKindName(algorithm);
    }
  }
}

TEST(TableauTest, RowConfidencesMatchRescan) {
  // Row confidences are carried out of candidate generation (no per-row
  // rescan in DiscoverTableau); the kernel contract says they must equal
  // what the evaluator computes for the same interval, bit for bit.
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(11, 150);
  auto rule = ConservationRule::Create(counts);
  ASSERT_TRUE(rule.ok());

  for (const auto model : {ConfidenceModel::kBalance, ConfidenceModel::kCredit,
                           ConfidenceModel::kDebit}) {
    for (const auto algorithm :
         {interval::AlgorithmKind::kExhaustive,
          interval::AlgorithmKind::kAreaBased,
          interval::AlgorithmKind::kAreaBasedOpt,
          interval::AlgorithmKind::kNonAreaBased,
          interval::AlgorithmKind::kNonAreaBasedOpt}) {
      const bool non_area_based =
          algorithm == interval::AlgorithmKind::kNonAreaBased ||
          algorithm == interval::AlgorithmKind::kNonAreaBasedOpt;
      if (non_area_based && model != ConfidenceModel::kBalance) continue;
      TableauRequest request;
      request.type = TableauType::kFail;
      request.model = model;
      request.algorithm = algorithm;
      request.c_hat = 0.6;
      request.s_hat = 0.5;
      auto tableau = rule->DiscoverTableau(request);
      ASSERT_TRUE(tableau.ok()) << interval::AlgorithmKindName(algorithm);
      for (const TableauRow& row : tableau->rows) {
        const std::optional<double> rescan =
            rule->Confidence(model, row.interval.begin, row.interval.end);
        ASSERT_TRUE(rescan.has_value());
        EXPECT_EQ(row.confidence, *rescan)
            << interval::AlgorithmKindName(algorithm) << " "
            << row.interval.ToString();
      }
    }
  }
}

TEST(TableauTest, CoverStatsPopulated) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(12, 200);
  auto rule = ConservationRule::Create(counts);
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  request.type = TableauType::kFail;
  request.c_hat = 0.6;
  request.s_hat = 0.5;
  request.num_threads = 2;  // exercises the parallel seeding path
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  EXPECT_EQ(tableau->cover_stats.rounds,
            static_cast<int64_t>(tableau->rows.size()));
  EXPECT_GE(tableau->cover_stats.heap_pops, tableau->cover_stats.rounds);
  if (!tableau->rows.empty()) {
    EXPECT_GT(tableau->cover_stats.peak_heap_size, 0);
  }
}

TEST(TableauTest, ToStringMentionsTypeAndModel) {
  auto rule = ConservationRule::Create({5, 5}, {5, 5});
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  request.type = TableauType::kHold;
  request.model = ConfidenceModel::kDebit;
  request.c_hat = 0.5;
  request.s_hat = 1.0;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  const std::string text = tableau->ToString();
  EXPECT_NE(text.find("hold"), std::string::npos);
  EXPECT_NE(text.find("debit"), std::string::npos);
}

TEST(ConservationRuleTest, CreateEnforcesDominance) {
  // a exceeds b at the start; Create must preprocess.
  auto rule = ConservationRule::Create({5, 0}, {0, 5});
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->cumulative().Dominates());

  ConservationRule::Options options;
  options.enforce_dominance = false;
  auto strict = ConservationRule::Create({5.0, 0.0}, {0.0, 5.0}, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(ConservationRuleTest, ConfidenceDelegates) {
  auto rule = ConservationRule::Create({2, 0, 1, 1, 2}, {3, 1, 1, 2, 0});
  ASSERT_TRUE(rule.ok());
  EXPECT_DOUBLE_EQ(*rule->Confidence(ConfidenceModel::kBalance, 2, 4), 0.3);
  EXPECT_DOUBLE_EQ(*rule->Confidence(ConfidenceModel::kCredit, 2, 4), 0.6);
  EXPECT_DOUBLE_EQ(*rule->Confidence(ConfidenceModel::kDebit, 2, 4),
                   3.0 / 7.0);
  EXPECT_DOUBLE_EQ(rule->Delay().total_delay, 9.0);
  EXPECT_TRUE(rule->OverallConfidence(ConfidenceModel::kBalance).has_value());
}

TEST(ConservationRuleTest, SurvivesMove) {
  auto rule = ConservationRule::Create({1, 2, 3}, {3, 2, 1});
  ASSERT_TRUE(rule.ok());
  ConservationRule moved = std::move(rule).value();
  EXPECT_EQ(moved.n(), 3);
  EXPECT_TRUE(moved.OverallConfidence(ConfidenceModel::kBalance).has_value());
}

}  // namespace
}  // namespace conservation::core
