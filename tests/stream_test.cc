#include <gtest/gtest.h>

#include "core/confidence.h"
#include "datagen/perturb.h"
#include "datagen/router.h"
#include "series/cumulative.h"
#include "stream/streaming_monitor.h"
#include "tests/test_data.h"

namespace conservation::stream {
namespace {

using core::ConfidenceModel;

TEST(StreamingMonitorTest, EmptyStream) {
  StreamOptions options;
  StreamingMonitor monitor(options);
  EXPECT_EQ(monitor.ticks(), 0);
  EXPECT_FALSE(monitor.CumulativeConfidence().has_value());
  EXPECT_FALSE(monitor.WindowConfidence().has_value());
}

TEST(StreamingMonitorTest, PerfectConservationIsOne) {
  StreamOptions options;
  options.window = 4;
  StreamingMonitor monitor(options);
  for (int t = 0; t < 10; ++t) monitor.Observe(3.0, 3.0);
  ASSERT_TRUE(monitor.CumulativeConfidence().has_value());
  EXPECT_DOUBLE_EQ(*monitor.CumulativeConfidence(), 1.0);
  EXPECT_DOUBLE_EQ(*monitor.WindowConfidence(), 1.0);
  EXPECT_FALSE(monitor.in_violation());
}

TEST(StreamingMonitorTest, RequireFullWindowSuppressesEarlyAnswers) {
  StreamOptions options;
  options.window = 8;
  StreamingMonitor monitor(options);
  for (int t = 0; t < 7; ++t) {
    monitor.Observe(1.0, 1.0);
    EXPECT_FALSE(monitor.WindowConfidence().has_value()) << t;
  }
  monitor.Observe(1.0, 1.0);
  EXPECT_TRUE(monitor.WindowConfidence().has_value());
}

// Differential test: the monitor's answers equal a batch evaluator built on
// the prefix seen so far (prefix-consistent credit/debit semantics).
class StreamDifferential
    : public ::testing::TestWithParam<std::tuple<ConfidenceModel, uint64_t>> {
};

TEST_P(StreamDifferential, MatchesBatchEvaluatorOnPrefixes) {
  const auto& [model, seed] = GetParam();
  const int64_t n = 200;
  const int64_t window = 16;
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(seed, n);

  StreamOptions options;
  options.model = model;
  options.window = window;
  options.require_full_window = false;
  StreamingMonitor monitor(options);

  for (int64_t t = 1; t <= n; ++t) {
    monitor.Observe(counts.a(t), counts.b(t));
    if (t % 7 != 0) continue;  // check a sample of prefixes

    const series::CountSequence prefix = counts.Prefix(t);
    const series::CumulativeSeries cumulative(prefix);
    const core::ConfidenceEvaluator eval(&cumulative, model);

    const auto batch_whole = eval.Confidence(1, t);
    const auto stream_whole = monitor.CumulativeConfidence();
    ASSERT_EQ(batch_whole.has_value(), stream_whole.has_value()) << t;
    if (batch_whole.has_value()) {
      EXPECT_NEAR(*batch_whole, *stream_whole, 1e-9) << "t=" << t;
    }

    const int64_t i = std::max<int64_t>(1, t - window + 1);
    const auto batch_window = eval.Confidence(i, t);
    const auto stream_window = monitor.WindowConfidence();
    ASSERT_EQ(batch_window.has_value(), stream_window.has_value()) << t;
    if (batch_window.has_value()) {
      EXPECT_NEAR(*batch_window, *stream_window, 1e-9) << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamDifferential,
    ::testing::Combine(::testing::Values(ConfidenceModel::kBalance,
                                         ConfidenceModel::kCredit,
                                         ConfidenceModel::kDebit),
                       ::testing::Values(21u, 22u, 23u, 24u)));

TEST(StreamingMonitorTest, DetectsInjectedOutage) {
  const series::CountSequence base =
      datagen::GenerateWellBehavedTraffic(906, 777);
  datagen::PerturbationSpec spec;
  spec.fraction = 0.1;
  spec.compensate = true;
  spec.latest_start_fraction = 0.4;
  datagen::PerturbationInfo info;
  const series::CountSequence perturbed =
      datagen::ApplyPerturbation(base, spec, &info);

  StreamOptions options;
  options.model = ConfidenceModel::kBalance;
  options.window = 48;
  options.alert_threshold = 0.5;
  options.clear_threshold = 0.7;
  StreamingMonitor monitor(options);

  int callbacks = 0;
  monitor.OnEpisode([&](const ViolationEpisode&) { ++callbacks; });
  for (int64_t t = 1; t <= perturbed.n(); ++t) {
    monitor.Observe(perturbed.a(t), perturbed.b(t));
  }
  monitor.Flush();

  ASSERT_GE(monitor.episodes().size(), 1u);
  EXPECT_EQ(static_cast<int>(monitor.episodes().size()), callbacks);
  // The first episode starts shortly after the drop begins (the window
  // needs some violating mass before the threshold trips) and ends around
  // the recovery.
  const ViolationEpisode& episode = monitor.episodes().front();
  EXPECT_GE(episode.begin, info.drop_begin);
  EXPECT_LE(episode.begin, info.drop_begin + options.window);
  EXPECT_LE(episode.end, info.recovery_tick + options.window);
  EXPECT_LT(episode.min_confidence, 0.3);
}

TEST(StreamingMonitorTest, NoEpisodesOnCleanTraffic) {
  const series::CountSequence clean =
      datagen::GenerateWellBehavedTraffic(906, 778);
  StreamOptions options;
  options.window = 48;
  options.alert_threshold = 0.5;
  options.clear_threshold = 0.6;
  StreamingMonitor monitor(options);
  for (int64_t t = 1; t <= clean.n(); ++t) {
    monitor.Observe(clean.a(t), clean.b(t));
  }
  monitor.Flush();
  EXPECT_TRUE(monitor.episodes().empty());
}

TEST(StreamingMonitorTest, HysteresisMergesFlappingTicks) {
  StreamOptions options;
  options.window = 2;
  options.alert_threshold = 0.4;
  options.clear_threshold = 0.9;
  StreamingMonitor monitor(options);
  // Alternate bad (a=0) and mediocre (a=b/2) ticks; with a high clear
  // threshold, the episode must not close in between. The flapping phase
  // accrues a backlog of 18, drained afterwards without ever violating
  // dominance.
  for (int t = 0; t < 4; ++t) monitor.Observe(4.0, 4.0);
  for (int t = 0; t < 6; ++t) monitor.Observe(t % 2 == 0 ? 0.0 : 2.0, 4.0);
  for (int t = 0; t < 9; ++t) monitor.Observe(6.0, 4.0);  // drain backlog
  for (int t = 0; t < 5; ++t) monitor.Observe(4.0, 4.0);  // steady state
  monitor.Flush();
  EXPECT_EQ(monitor.episodes().size(), 1u);
}

TEST(StreamingMonitorTest, DominanceViolationAborts) {
  StreamOptions options;
  StreamingMonitor monitor(options);
  monitor.Observe(1.0, 2.0);
  EXPECT_DEATH(monitor.Observe(5.0, 0.0), "gap");
}

}  // namespace
}  // namespace conservation::stream
