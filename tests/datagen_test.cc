#include <gtest/gtest.h>

#include "datagen/credit_card.h"
#include "datagen/job_log.h"
#include "datagen/people_count.h"
#include "datagen/router.h"
#include "datagen/tcp_trace.h"
#include "core/confidence.h"
#include "series/cumulative.h"

namespace conservation::datagen {
namespace {

TEST(CreditCardTest, ShapeAndDominance) {
  const CreditCardData data = GenerateCreditCard();
  EXPECT_EQ(data.counts.n(), 344);
  const series::CumulativeSeries cumulative(data.counts);
  EXPECT_TRUE(cumulative.Dominates());
}

TEST(CreditCardTest, Deterministic) {
  const CreditCardData one = GenerateCreditCard();
  const CreditCardData two = GenerateCreditCard();
  for (int64_t t = 1; t <= one.counts.n(); ++t) {
    EXPECT_DOUBLE_EQ(one.counts.a(t), two.counts.a(t));
    EXPECT_DOUBLE_EQ(one.counts.b(t), two.counts.b(t));
  }
}

TEST(CreditCardTest, DecemberChargesDominatePayments) {
  const CreditCardData data = GenerateCreditCard();
  // In Decembers of late (non-recession) years, charges exceed payments.
  int december_excess = 0;
  int december_count = 0;
  for (int64_t t = 1; t <= data.counts.n(); ++t) {
    const int month = static_cast<int>((t - 1) % 12) + 1;
    const int year = data.params.start_year + static_cast<int>((t - 1) / 12);
    if (month == 12 && year >= 2000 && year != data.params.recession_year) {
      ++december_count;
      if (data.counts.b(t) > data.counts.a(t)) ++december_excess;
    }
  }
  EXPECT_GT(december_count, 0);
  EXPECT_EQ(december_excess, december_count);
}

TEST(CreditCardTest, OverallConfidenceNearOne) {
  const CreditCardData data = GenerateCreditCard();
  const series::CumulativeSeries cumulative(data.counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  ASSERT_TRUE(eval.Confidence(1, data.counts.n()).has_value());
  EXPECT_GT(*eval.Confidence(1, data.counts.n()), 0.9);
}

TEST(PeopleCountTest, ShapeAndDominance) {
  const PeopleCountData data = GeneratePeopleCount();
  EXPECT_EQ(data.counts.n(), 15 * 7 * 48);
  const series::CumulativeSeries cumulative(data.counts);
  EXPECT_TRUE(cumulative.Dominates());
}

TEST(PeopleCountTest, SideExitCreatesPersistentGap) {
  const PeopleCountData data = GeneratePeopleCount();
  const series::CumulativeSeries cumulative(data.counts);
  const int64_t n = data.counts.n();
  // The cumulative gap at the end reflects the unrecorded side exits: a
  // small but persistent share of all entrances (kept modest so it does not
  // drown the event signal; see PeopleCountParams::side_exit_fraction).
  const double gap = cumulative.B(n) - cumulative.A(n);
  EXPECT_GT(gap / cumulative.B(n), 0.01);
  EXPECT_LT(gap / cumulative.B(n), 0.2);
}

TEST(PeopleCountTest, EventsAreWithinTraceAndOrdered) {
  const PeopleCountData data = GeneratePeopleCount();
  EXPECT_EQ(static_cast<int>(data.events.size()), data.params.num_events);
  const int64_t n = data.counts.n();
  int previous_day = -1;
  for (const BuildingEvent& event : data.events) {
    EXPECT_GE(event.day, previous_day);
    previous_day = event.day;
    EXPECT_GE(event.BeginTick(), 1);
    EXPECT_LE(event.EndTick(), n);
    EXPECT_LE(event.start_slot, event.end_slot);
    EXPECT_GT(event.attendance, 0);
  }
}

TEST(PeopleCountTest, EventsInflateEntrances) {
  PeopleCountParams params;
  params.num_events = 6;
  params.min_attendance = 150;
  params.max_attendance = 200;
  const PeopleCountData data = GeneratePeopleCount(params);
  // Around each event's start, entrances should spike well above the
  // weekday baseline.
  for (const BuildingEvent& event : data.events) {
    double near_event = 0.0;
    for (int64_t t = std::max<int64_t>(1, event.BeginTick() - 2);
         t <= event.BeginTick(); ++t) {
      near_event += data.counts.b(t);
    }
    EXPECT_GT(near_event, 50.0) << event.label;
  }
}

TEST(RouterTest, CleanRouterConservesTraffic) {
  RouterParams params;
  params.profile = RouterProfile::kClean;
  params.num_ticks = 1000;
  const RouterData data = GenerateRouter(params);
  const series::CumulativeSeries cumulative(data.counts);
  EXPECT_TRUE(cumulative.Dominates());
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kDebit);
  EXPECT_GT(*eval.Confidence(1, 1000), 0.95);
}

TEST(RouterTest, UnmonitoredLinkDepressesConfidence) {
  RouterParams params;
  params.profile = RouterProfile::kUnmonitoredLink;
  params.num_ticks = 1000;
  const RouterData data = GenerateRouter(params);
  const series::CumulativeSeries cumulative(data.counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kDebit);
  EXPECT_LT(*eval.Confidence(1, 1000), 0.7);
}

TEST(RouterTest, LateActivationRecoversAfterTick) {
  RouterParams params;
  params.profile = RouterProfile::kLateActivation;
  params.num_ticks = 1000;
  params.activation_tick = 800;
  const RouterData data = GenerateRouter(params);
  const series::CumulativeSeries cumulative(data.counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kDebit);
  // Before activation traffic is under-measured; after, it conserves.
  EXPECT_LT(*eval.Confidence(1, 799), 0.7);
  EXPECT_GT(*eval.Confidence(810, 1000), 0.85);
}

TEST(RouterTest, FleetHasExpectedNames) {
  const std::vector<RouterData> fleet = GenerateRouterFleet(3, 500, 99);
  ASSERT_EQ(fleet.size(), 5u + 1u + 3u);
  EXPECT_EQ(fleet[0].name, "Router-1");
  EXPECT_EQ(fleet[5].name, "Router-7");
  EXPECT_EQ(fleet[5].params.profile, RouterProfile::kLateActivation);
  EXPECT_EQ(fleet[6].params.profile, RouterProfile::kClean);
}

TEST(RouterTest, WellBehavedTrafficHasConfidenceNearOne) {
  const series::CountSequence counts = GenerateWellBehavedTraffic(906);
  EXPECT_EQ(counts.n(), 906);
  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  EXPECT_GT(*eval.Confidence(1, 906), 0.99);
}

TEST(TcpTraceTest, ShapeDominanceAndBurstiness) {
  TcpTraceParams params;
  params.num_ticks = 20000;
  const TcpTraceData data = GenerateTcpTrace(params);
  EXPECT_EQ(data.counts.n(), 20000);
  const series::CumulativeSeries cumulative(data.counts);
  EXPECT_TRUE(cumulative.Dominates());
  // Burstiness: the per-tick SYN variance should exceed the mean
  // (overdispersion vs. plain Poisson).
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int64_t t = 1; t <= data.counts.n(); ++t) {
    sum += data.counts.b(t);
    sum_sq += data.counts.b(t) * data.counts.b(t);
  }
  const double mean = sum / static_cast<double>(data.counts.n());
  const double variance =
      sum_sq / static_cast<double>(data.counts.n()) - mean * mean;
  EXPECT_GT(variance, 1.2 * mean);
}

TEST(JobLogTest, ShapeDominanceAndHighConfidence) {
  JobLogParams params;
  params.num_ticks = 50000;
  const JobLogData data = GenerateJobLog(params);
  const series::CumulativeSeries cumulative(data.counts);
  EXPECT_TRUE(cumulative.Dominates());
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  // Fig. 7 requires conf(1, n) to be extremely high on the job data.
  EXPECT_GT(*eval.Confidence(1, data.counts.n()), 0.995);
}

TEST(JobLogTest, WeekendsAreQuieter) {
  JobLogParams params;
  params.num_ticks = 14 * 1440;  // two weeks of minute ticks
  const JobLogData data = GenerateJobLog(params);
  double weekday_sum = 0.0;
  double weekend_sum = 0.0;
  int64_t weekday_ticks = 0;
  int64_t weekend_ticks = 0;
  for (int64_t t = 1; t <= data.counts.n(); ++t) {
    const int64_t day = (t - 1) / params.ticks_per_day;
    if (day % 7 >= 5) {
      weekend_sum += data.counts.b(t);
      ++weekend_ticks;
    } else {
      weekday_sum += data.counts.b(t);
      ++weekday_ticks;
    }
  }
  EXPECT_LT(weekend_sum / weekend_ticks, weekday_sum / weekday_ticks);
}

}  // namespace
}  // namespace conservation::datagen
