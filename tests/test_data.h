// Shared helpers for generating random dominated integer count data in
// tests. Integer counts with minimum positive value 1 keep the paper's
// "smallest nonzero area >= Delta" fact exact, so the approximation
// guarantees are testable without tolerance games.

#ifndef CONSERVATION_TESTS_TEST_DATA_H_
#define CONSERVATION_TESTS_TEST_DATA_H_

#include <cstdint>
#include <vector>

#include "series/cumulative.h"
#include "series/sequence.h"
#include "util/check.h"
#include "util/random.h"

namespace conservation::testing_util {

// Random dominated integer sequences of length n: inbound ~ Poisson(mean),
// outbound drains a random share of the accumulated slack, with occasional
// dry spells (zero outbound) so confidence varies widely.
inline series::CountSequence RandomDominatedCounts(uint64_t seed, int64_t n,
                                                   double mean = 5.0) {
  util::Rng rng(seed);
  std::vector<double> a;
  std::vector<double> b;
  a.reserve(static_cast<size_t>(n));
  b.reserve(static_cast<size_t>(n));
  double slack = 0.0;
  bool dry = false;
  for (int64_t t = 0; t < n; ++t) {
    if (rng.Bernoulli(0.1)) dry = !dry;  // toggle dry spells
    const double inbound = static_cast<double>(rng.Poisson(mean));
    const double available = slack + inbound;
    double outbound = 0.0;
    if (!dry && available > 0.0) {
      outbound = static_cast<double>(
          rng.UniformInt(0, static_cast<int64_t>(available)));
    }
    a.push_back(outbound);
    b.push_back(inbound);
    slack += inbound - outbound;
  }
  // Guarantee at least one positive count.
  if (slack == 0.0 && a.empty()) b.push_back(1.0);
  auto counts = series::CountSequence::Create(std::move(a), std::move(b));
  CR_CHECK(counts.ok());
  return std::move(counts).value();
}

}  // namespace conservation::testing_util

#endif  // CONSERVATION_TESTS_TEST_DATA_H_
