// Checkpoint/resume differentials for the resumable walk states
// (interval/walk.h). The states are plain copyable values, so a checkpoint
// is a struct copy (plus, for AB, the chunk's shared pointer vector) and a
// resume is continuing the copy. Every test interrupts a walk at an
// adversarial boundary — each probe of an in-flight binary search, each
// level of an AB sweep, each reverse block of a NAB sweep, chunk edges via
// chunks_per_thread, sub-lane tails via odd walk widths — and asserts the
// resumed walk reproduces the uninterrupted one bitwise: same candidates,
// same confidences, same counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/confidence.h"
#include "datagen/job_log.h"
#include "interval/generator.h"
#include "interval/kernel.h"
#include "interval/kernel_simd.h"
#include "interval/non_area_based.h"
#include "interval/walk.h"
#include "series/cumulative.h"

namespace conservation {
namespace {

using core::ConfidenceEvaluator;
using core::ConfidenceModel;
using core::TableauType;
using interval::Candidate;
using interval::GeneratorOptions;
namespace ii = interval::internal;

const series::CumulativeSeries& JobSeries(int64_t n) {
  static auto* cache = new std::vector<
      std::pair<int64_t, series::CumulativeSeries*>>();
  for (const auto& [key, value] : *cache) {
    if (key == n) return *value;
  }
  datagen::JobLogParams params;
  params.num_ticks = n;
  auto* built =
      new series::CumulativeSeries(datagen::GenerateJobLog(params).counts);
  cache->emplace_back(n, built);
  return *built;
}

// --- AB-opt walk state ------------------------------------------------------

struct AbOptFixture {
  const series::CumulativeSeries& cumulative;
  ConfidenceEvaluator eval;
  GeneratorOptions options;
  ii::ConfidenceKernel kernel;
  double delta;
  ii::AbOptWalkContext ctx;

  explicit AbOptFixture(int64_t n,
                        ConfidenceModel model = ConfidenceModel::kBalance,
                        TableauType type = TableauType::kHold)
      : cumulative(JobSeries(n)),
        eval(&cumulative, model),
        options(),
        kernel(eval, type),
        delta(0.0) {
    options.type = type;
    options.c_hat = 0.999;
    options.epsilon = 0.01;
    delta = interval::ResolveDelta(eval.series(), options);
    ctx.n = n;
    ctx.delta = delta;
    ctx.growth = 1.0 + options.epsilon;
    ctx.credit_fail =
        type == TableauType::kFail && model == ConfidenceModel::kCredit;
    ctx.zero_prefix_lengths = &zero_prefix_lengths;
    if (ctx.credit_fail) {
      double power = 1.0;
      while (static_cast<int64_t>(power) < n) {
        zero_prefix_lengths.push_back(static_cast<int64_t>(power));
        power *= ctx.growth;
      }
      zero_prefix_lengths.push_back(n);
    }
    ctx.sp = kernel.sp();
  }

  std::vector<int64_t> zero_prefix_lengths;
};

// Runs anchor i's walk to completion with scalar Advance stepping.
std::vector<int64_t> ReferenceBreakpoints(AbOptFixture& fix, int64_t i,
                                          uint64_t* probes = nullptr) {
  fix.kernel.BeginAnchor(i);
  ii::AbOptWalkState walk;
  walk.Begin(i, fix.ctx);
  while (!walk.done()) {
    walk.Advance(fix.kernel.SparseArea(walk.probe_j()), fix.ctx);
  }
  if (probes != nullptr) *probes = walk.probes();
  return walk.breakpoints();
}

// Checkpointing the Advance-stepped walk after every probe ordinal and
// resuming the copy must reproduce the uninterrupted breakpoint list and
// probe count exactly.
TEST(AbOptWalkResume, EveryProbeOrdinal) {
  AbOptFixture fix(700);
  for (const int64_t anchor : {1L, 2L, 137L, 350L, 699L, 700L}) {
    uint64_t ref_probes = 0;
    const std::vector<int64_t> reference =
        ReferenceBreakpoints(fix, anchor, &ref_probes);
    ASSERT_GT(ref_probes, 0u);
    for (uint64_t cut = 0; cut <= ref_probes; ++cut) {
      fix.kernel.BeginAnchor(anchor);
      ii::AbOptWalkState walk;
      walk.Begin(anchor, fix.ctx);
      for (uint64_t p = 0; p < cut && !walk.done(); ++p) {
        walk.Advance(fix.kernel.SparseArea(walk.probe_j()), fix.ctx);
      }
      ii::AbOptWalkState resumed = walk;  // checkpoint: plain value copy
      while (!resumed.done()) {
        resumed.Advance(fix.kernel.SparseArea(resumed.probe_j()), fix.ctx);
      }
      ASSERT_EQ(resumed.breakpoints(), reference)
          << "anchor " << anchor << " cut " << cut;
      ASSERT_EQ(resumed.probes(), ref_probes);
    }
  }
}

// The lane-stepped form (StoreRegs / SparseWalkRound / CompleteSearch) must
// visit the identical probe sequence as the Advance form — including with a
// mid-walk checkpoint of state + lane registers at every round boundary.
TEST(AbOptWalkResume, LaneFormMatchesAdvanceForm) {
  AbOptFixture fix(700);
  for (const int64_t anchor : {1L, 42L, 350L, 700L}) {
    const std::vector<int64_t> reference = ReferenceBreakpoints(fix, anchor);

    fix.kernel.BeginAnchor(anchor);
    ii::WalkLaneBuffers lanes(1);
    ii::AbOptWalkState walk;
    walk.Begin(anchor, fix.ctx);
    lanes.i[0] = anchor;
    lanes.sp_prev[0] = fix.kernel.sp_prev();
    lanes.h_sp[0] = fix.kernel.h_sp();
    walk.StoreRegs(&lanes, 0);

    int round = 0;
    bool retired = false;
    while (!retired) {
      ++round;
      const uint64_t mask = fix.kernel.SparseWalkRound(lanes.RoundArgs(), 1);
      if ((mask & 1) == 0) continue;
      // Checkpoint at this search-completion boundary: copy the state and
      // the lane registers, resume the copy to completion, and require the
      // reference breakpoints.
      ii::AbOptWalkState checkpoint = walk;
      ii::WalkLaneBuffers lane_copy = lanes;
      bool copy_retired = checkpoint.CompleteSearch(&lane_copy, 0, fix.ctx);
      while (!copy_retired) {
        const uint64_t m =
            fix.kernel.SparseWalkRound(lane_copy.RoundArgs(), 1);
        if ((m & 1) != 0) {
          copy_retired = checkpoint.CompleteSearch(&lane_copy, 0, fix.ctx);
        }
      }
      ASSERT_EQ(checkpoint.breakpoints(), reference)
          << "anchor " << anchor << " checkpoint round " << round;
      retired = walk.CompleteSearch(&lanes, 0, fix.ctx);
    }
    ASSERT_EQ(walk.breakpoints(), reference) << "anchor " << anchor;
  }
}

// Full-generator differential: AB-opt candidates and counters are
// bit-identical across walk widths (odd widths exercise the SIMD round's
// sub-lane scalar tail, widths > 64 the bank split), thread counts, and
// chunk granularities (chunk edges move walk retirement boundaries).
TEST(AbOptWalkResume, WidthThreadChunkDifferential) {
  const int64_t n = 3000;
  const series::CumulativeSeries& cumulative = JobSeries(n);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);
  const auto generator =
      interval::MakeGenerator(interval::AlgorithmKind::kAreaBasedOpt);

  GeneratorOptions options;
  options.type = TableauType::kHold;
  options.c_hat = 0.999;
  options.epsilon = 0.01;
  options.walk_width = 1;  // scalar reference walk
  interval::GeneratorStats ref_stats;
  const std::vector<Candidate> reference =
      generator->GenerateCandidates(eval, options, &ref_stats);
  ASSERT_GT(ref_stats.intervals_tested, 0u);

  for (const int width : {2, 3, 5, 16, 64, 128, 256}) {
    for (const int threads : {1, 3}) {
      for (const int chunks_per_thread : {1, 7}) {
        GeneratorOptions run = options;
        run.walk_width = width;
        run.num_threads = threads;
        run.chunks_per_thread = chunks_per_thread;
        interval::GeneratorStats stats;
        const std::vector<Candidate> got =
            generator->GenerateCandidates(eval, run, &stats);
        ASSERT_EQ(got.size(), reference.size())
            << "width " << width << " threads " << threads;
        for (size_t k = 0; k < got.size(); ++k) {
          ASSERT_EQ(got[k].interval.begin, reference[k].interval.begin);
          ASSERT_EQ(got[k].interval.end, reference[k].interval.end);
          // Bitwise: the walk must reproduce the scalar arithmetic exactly.
          ASSERT_EQ(got[k].confidence, reference[k].confidence)
              << "width " << width << " threads " << threads << " row " << k;
        }
        ASSERT_EQ(stats.intervals_tested, ref_stats.intervals_tested)
            << "width " << width;
        ASSERT_EQ(stats.endpoint_steps, ref_stats.endpoint_steps)
            << "width " << width;
        if (width > 1 &&
            ii::ActiveSimdBackend() != ii::SimdBackend::kScalar) {
          EXPECT_GT(stats.walks, 0u) << "width " << width;
        }
      }
    }
  }
}

// --- AB walk state ----------------------------------------------------------

// Uninterrupted vs checkpoint-at-every-level: the AB state plus the chunk's
// shared pointer vector is the full checkpoint; restoring both and resuming
// must reproduce best_j/best_conf and the counters.
TEST(AbWalkResume, EveryLevelBoundary) {
  const int64_t n = 600;
  const series::CumulativeSeries& cumulative = JobSeries(n);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);
  GeneratorOptions options;
  options.type = TableauType::kHold;
  options.c_hat = 0.999;
  options.epsilon = 0.01;
  const double delta = interval::ResolveDelta(eval.series(), options);
  const double growth = 1.0 + options.epsilon;
  const double max_area = eval.series().SumB(1, n);
  std::vector<double> thresholds;
  double t_value = delta;
  int64_t num_levels =
      max_area > delta
          ? static_cast<int64_t>(
                std::ceil(std::log(max_area / delta) / std::log(growth))) + 1
          : 0;
  for (int64_t l = 0; l <= num_levels; ++l) {
    thresholds.push_back(t_value);
    t_value *= growth;
  }
  ii::ConfidenceKernel kernel(eval, options.type);
  const std::vector<int64_t> no_zero_prefix;

  ii::AbWalkContext ctx;
  ctx.n = n;
  ctx.delta = delta;
  ctx.growth = growth;
  ctx.thresholds = &thresholds;
  ctx.options = &options;
  ctx.zero_prefix_lengths = &no_zero_prefix;

  for (const int64_t anchor : {1L, 57L, 300L, 600L}) {
    // Uninterrupted run, with its own pointer vector (fresh chunk).
    std::vector<int64_t> ref_pointer(thresholds.size(), 0);
    ctx.pointer = &ref_pointer;
    ii::AbWalkScratch scratch;
    ii::WalkStepCounters ref_counters;
    ii::AbWalkState reference;
    kernel.BeginAnchor(anchor);
    reference.Begin(anchor, kernel, ctx);
    int total_steps = 0;
    while (!reference.done()) {
      reference.Step(kernel, ctx, &scratch, &ref_counters);
      ++total_steps;
    }
    ASSERT_GT(total_steps, 0);

    for (int cut = 0; cut <= total_steps; ++cut) {
      std::vector<int64_t> pointer(thresholds.size(), 0);
      ctx.pointer = &pointer;
      ii::WalkStepCounters counters;
      ii::AbWalkState walk;
      kernel.BeginAnchor(anchor);
      walk.Begin(anchor, kernel, ctx);
      for (int s = 0; s < cut && !walk.done(); ++s) {
        walk.Step(kernel, ctx, &scratch, &counters);
      }
      // Checkpoint: the state, the shared pointer vector, the counters.
      ii::AbWalkState resumed = walk;
      std::vector<int64_t> pointer_copy = pointer;
      ctx.pointer = &pointer_copy;
      ii::WalkStepCounters resumed_counters = counters;
      ii::AbWalkScratch fresh_scratch;  // scratch carries no walk state
      while (!resumed.done()) {
        resumed.Step(kernel, ctx, &fresh_scratch, &resumed_counters);
      }
      ASSERT_EQ(resumed.best_j(), reference.best_j())
          << "anchor " << anchor << " cut " << cut;
      ASSERT_EQ(resumed.best_conf(), reference.best_conf());
      ASSERT_EQ(resumed_counters.tested, ref_counters.tested);
      ASSERT_EQ(resumed_counters.steps, ref_counters.steps);
      ASSERT_EQ(resumed_counters.batches, ref_counters.batches);
    }
  }
}

// --- NAB walk state ---------------------------------------------------------

// Uninterrupted vs checkpoint-at-every-reverse-block (largest-first early
// exit splits the sweep into resumable blocks; the plain sweep is a single
// step and checkpoints trivially before/after).
TEST(NabWalkResume, EveryBlockBoundary) {
  const int64_t n = 600;
  const series::CumulativeSeries& cumulative = JobSeries(n);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);
  GeneratorOptions options;
  options.type = TableauType::kHold;
  options.c_hat = 0.9;
  options.epsilon = 0.01;
  const std::vector<int64_t> lengths =
      interval::NonAreaBasedGenerator::MakeLengthSchedule(
          interval::NonAreaBasedGenerator::LengthSchedule::kGeometric,
          options.epsilon, n);
  ii::ConfidenceKernel kernel(eval, options.type);

  for (const bool early_exit : {false, true}) {
    options.largest_first_early_exit = early_exit;
    ii::NabWalkContext ctx{&lengths, &options};
    for (const int64_t j : {1L, 64L, 300L, 600L}) {
      size_t first_covering = lengths.size() - 1;
      while (first_covering > 0 && lengths[first_covering - 1] >= j) {
        --first_covering;
      }
      const size_t applicable = first_covering + 1;

      ii::NabWalkScratch scratch;
      ii::WalkStepCounters ref_counters;
      ii::NabWalkState reference;
      kernel.BeginRightAnchor(j);
      reference.Begin(j, applicable);
      int total_steps = 0;
      while (!reference.finished) {
        reference.Step(kernel, ctx, &scratch, &ref_counters);
        ++total_steps;
      }

      for (int cut = 0; cut <= total_steps; ++cut) {
        ii::WalkStepCounters counters;
        ii::NabWalkState walk;
        kernel.BeginRightAnchor(j);
        walk.Begin(j, applicable);
        for (int s = 0; s < cut && !walk.finished; ++s) {
          walk.Step(kernel, ctx, &scratch, &counters);
        }
        ii::NabWalkState resumed = walk;  // checkpoint: plain value copy
        ii::WalkStepCounters resumed_counters = counters;
        ii::NabWalkScratch fresh_scratch;
        while (!resumed.finished) {
          resumed.Step(kernel, ctx, &fresh_scratch, &resumed_counters);
        }
        ASSERT_EQ(resumed.best_i, reference.best_i)
            << "early_exit " << early_exit << " j " << j << " cut " << cut;
        ASSERT_EQ(resumed.best_conf, reference.best_conf);
        ASSERT_EQ(resumed_counters.tested, ref_counters.tested);
        ASSERT_EQ(resumed_counters.batches, ref_counters.batches);
      }
    }
  }
}

// --- Cross-batch resume (checkpoint at an append boundary) ------------------

// A walk checkpointed while the series had n1 ticks must resume bitwise
// after CumulativeSeries::Append grows the arrays under it — the scenario
// the incremental engine (incr/incremental.h) relies on. The walk's scope
// stays the prefix (ctx.n = n1, fixed at Begin); Append extends every
// derived array with bitwise-identical prefix values but reallocates, so
// the resume must run against a REBUILT kernel (kernel.h caches raw
// pointers). Checkpoints at every probe ordinal, including 0 (the whole
// walk runs post-append).
TEST(AbOptWalkResume, CrossBatchAppendBoundary) {
  const int64_t n1 = 400;
  const int64_t n2 = 700;
  datagen::JobLogParams params;
  params.num_ticks = n2;
  const series::CountSequence counts = datagen::GenerateJobLog(params).counts;

  // Reference context + walks over the prefix-only series (same data the
  // growable series starts from, NOT a regenerated shorter trace).
  const series::CumulativeSeries prefix_series(counts.Prefix(n1));
  const core::ConfidenceEvaluator prefix_eval(&prefix_series,
                                              ConfidenceModel::kBalance);
  GeneratorOptions options;
  options.type = TableauType::kHold;
  options.c_hat = 0.999;
  options.epsilon = 0.01;
  const std::vector<int64_t> no_zero_prefix;
  ii::AbOptWalkContext ctx;
  ctx.n = n1;
  ctx.delta = interval::ResolveDelta(prefix_eval.series(), options);
  ctx.growth = 1.0 + options.epsilon;
  ctx.credit_fail = false;
  ctx.zero_prefix_lengths = &no_zero_prefix;
  const std::vector<double>& tail_a = counts.outbound();
  const std::vector<double>& tail_b = counts.inbound();

  for (const int64_t anchor : {1L, 137L, 399L, 400L}) {
    uint64_t ref_probes = 0;
    std::vector<int64_t> reference;
    {
      ii::ConfidenceKernel kernel(prefix_eval, TableauType::kHold);
      ctx.sp = kernel.sp();
      kernel.BeginAnchor(anchor);
      ii::AbOptWalkState ref_walk;
      ref_walk.Begin(anchor, ctx);
      while (!ref_walk.done()) {
        ref_walk.Advance(kernel.SparseArea(ref_walk.probe_j()), ctx);
      }
      ref_probes = ref_walk.probes();
      reference = ref_walk.breakpoints();
    }
    ASSERT_GT(ref_probes, 0u);

    for (uint64_t cut = 0; cut <= ref_probes; ++cut) {
      // Fresh growable series per checkpoint: walk `cut` probes pre-append.
      series::CumulativeSeries growing(counts.Prefix(n1));
      core::ConfidenceEvaluator eval(&growing, ConfidenceModel::kBalance);
      ii::AbOptWalkState walk;
      {
        ii::ConfidenceKernel kernel(eval, TableauType::kHold);
        ctx.sp = kernel.sp();
        kernel.BeginAnchor(anchor);
        walk.Begin(anchor, ctx);
        for (uint64_t p = 0; p < cut && !walk.done(); ++p) {
          walk.Advance(kernel.SparseArea(walk.probe_j()), ctx);
        }
      }  // pre-append kernel dies with the append below

      growing.Append(tail_a.data() + n1, tail_b.data() + n1, n2 - n1);
      ASSERT_EQ(growing.n(), n2);

      ii::ConfidenceKernel resumed_kernel(eval, TableauType::kHold);
      ctx.sp = resumed_kernel.sp();
      resumed_kernel.BeginAnchor(anchor);
      ii::AbOptWalkState resumed = walk;  // checkpoint crossing the batch
      while (!resumed.done()) {
        resumed.Advance(resumed_kernel.SparseArea(resumed.probe_j()), ctx);
      }
      ASSERT_EQ(resumed.breakpoints(), reference)
          << "anchor " << anchor << " cut " << cut;
      ASSERT_EQ(resumed.probes(), ref_probes);
    }
  }
}

// --- Width resolution and CONSERVATION_SIMD parsing -------------------------

TEST(WalkWidth, ResolveRules) {
  GeneratorOptions options;
  // Scalar backend always walks one anchor at a time, whatever the knob.
  options.walk_width = 64;
  EXPECT_EQ(ii::ResolveWalkWidth(options, ii::SimdBackend::kScalar), 1);
  // Explicit width is clamped to the scheduler cap.
  options.walk_width = 100000;
  EXPECT_EQ(ii::ResolveWalkWidth(options, ii::SimdBackend::kAvx2),
            ii::kMaxWalkWidth);
  options.walk_width = 7;
  EXPECT_EQ(ii::ResolveWalkWidth(options, ii::SimdBackend::kAvx2), 7);
  // Auto: lane count x unroll, capped.
  options.walk_width = 0;
  EXPECT_EQ(ii::ResolveWalkWidth(options, ii::SimdBackend::kAvx2),
            std::min(ii::SimdLaneWidth(ii::SimdBackend::kAvx2) * 32,
                     ii::kMaxWalkWidth));
}

TEST(SimdRequestParse, CaseInsensitiveAndStrict) {
  using ii::ParseSimdRequest;
  using ii::SimdRequest;
  EXPECT_EQ(ParseSimdRequest(nullptr), SimdRequest::kAuto);
  EXPECT_EQ(ParseSimdRequest(""), SimdRequest::kAuto);
  EXPECT_EQ(ParseSimdRequest("auto"), SimdRequest::kAuto);
  EXPECT_EQ(ParseSimdRequest("AUTO"), SimdRequest::kAuto);
  EXPECT_EQ(ParseSimdRequest("off"), SimdRequest::kScalar);
  EXPECT_EQ(ParseSimdRequest("OFF"), SimdRequest::kScalar);
  EXPECT_EQ(ParseSimdRequest("Scalar"), SimdRequest::kScalar);
  EXPECT_EQ(ParseSimdRequest("AVX2"), SimdRequest::kAvx2);
  EXPECT_EQ(ParseSimdRequest("Neon"), SimdRequest::kNeon);
  EXPECT_EQ(ParseSimdRequest("sse9"), SimdRequest::kInvalid);
  EXPECT_EQ(ParseSimdRequest("avx512"), SimdRequest::kInvalid);
  EXPECT_EQ(ParseSimdRequest("a-very-long-token"), SimdRequest::kInvalid);
}

}  // namespace
}  // namespace conservation
