// Golden regression tests: pin the headline reproduction numbers produced
// by the deterministic, seeded generators. If a generator or algorithm
// change shifts these, EXPERIMENTS.md needs re-validation — this test makes
// that visible instead of silent.

#include <gtest/gtest.h>

#include "core/conservation_rule.h"
#include "datagen/credit_card.h"
#include "datagen/router.h"
#include "io/timeline.h"

namespace conservation {
namespace {

TEST(GoldenRegression, CreditCardFailTableauIsSevenHolidaySeasons) {
  const datagen::CreditCardData data = datagen::GenerateCreditCard();
  auto rule = core::ConservationRule::Create(data.counts);
  ASSERT_TRUE(rule.ok());
  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.c_hat = 0.7;
  request.s_hat = 0.04;
  request.epsilon = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());

  // The Fig. 3 reproduction: exactly the Nov-Dec seasons of 2001-2007.
  ASSERT_EQ(tableau->size(), 7u);
  const io::MonthTimeline timeline(1981, 1);
  int expected_year = 2001;
  for (const core::TableauRow& row : tableau->rows) {
    EXPECT_EQ(timeline.MonthOf(row.interval.begin), 11);
    EXPECT_EQ(timeline.MonthOf(row.interval.end), 12);
    EXPECT_EQ(timeline.YearOf(row.interval.begin), expected_year);
    ++expected_year;
  }
  // And the overall confidence the experiment reports.
  EXPECT_NEAR(*rule->OverallConfidence(core::ConfidenceModel::kBalance),
              0.9988, 5e-4);
}

TEST(GoldenRegression, Router7HoldTableauStartsNearActivation) {
  const std::vector<datagen::RouterData> fleet =
      datagen::GenerateRouterFleet(0, 3800, 20120402);
  const datagen::RouterData* router7 = nullptr;
  for (const auto& router : fleet) {
    if (router.name == "Router-7") router7 = &router;
  }
  ASSERT_NE(router7, nullptr);
  ASSERT_EQ(router7->params.activation_tick, 3610);

  auto rule = core::ConservationRule::Create(router7->counts);
  ASSERT_TRUE(rule.ok());
  core::TableauRequest request;
  request.type = core::TableauType::kHold;
  request.model = core::ConfidenceModel::kDebit;
  request.c_hat = 0.9;
  request.s_hat = 0.04;
  request.epsilon = 0.001;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  ASSERT_GE(tableau->size(), 1u);
  // The Table III reproduction: the hold interval begins within ~25 ticks
  // of the hidden link's activation and runs to the end.
  EXPECT_NEAR(static_cast<double>(tableau->rows.front().interval.begin),
              3610.0, 25.0);
  EXPECT_EQ(tableau->rows.back().interval.end, 3800);
}

TEST(GoldenRegression, WorkedExampleConstantsNeverDrift) {
  // Section III.A numbers that docs/ALGORITHMS.md §4 cites.
  auto counts = series::CountSequence::Create(
      {5, 8, 6, 8, 7, 4, 3, 20, 11, 7}, {10, 8, 11, 13, 6, 6, 5, 9, 12, 6});
  ASSERT_TRUE(counts.ok());
  const series::CumulativeSeries cumulative(*counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  EXPECT_DOUBLE_EQ(eval.AreaB(3, 7), 167.0);
  EXPECT_DOUBLE_EQ(eval.AreaB(3, 9), 289.0);
  EXPECT_DOUBLE_EQ(eval.AreaB(3, 10), 362.0);
  EXPECT_NEAR(*eval.Confidence(3, 10), 0.7376, 5e-5);
}

}  // namespace
}  // namespace conservation
