#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/labels.h"
#include "obs/metrics.h"

namespace conservation::obs {
namespace {

// Tests share the global registry and family registry, so every family
// name is unique to its test case.

TEST(LabelSetTest, CanonicalizesKeyOrder) {
  const LabelSet a{{"tenant", "t0"}, {"phase", "seed"}};
  const LabelSet b{{"phase", "seed"}, {"tenant", "t0"}};
  EXPECT_TRUE(a == b);
  ASSERT_EQ(a.entries().size(), 2u);
  EXPECT_EQ(a.entries()[0].first, "phase");
  EXPECT_EQ(a.entries()[1].first, "tenant");
}

TEST(LabelSetTest, DuplicateKeysKeepFirstOccurrence) {
  const LabelSet labels{{"k", "first"}, {"k", "second"}};
  ASSERT_EQ(labels.entries().size(), 1u);
  EXPECT_EQ(labels.entries()[0].second, "first");
}

TEST(EncodeLabeledNameTest, SortsKeysAndEscapesValues) {
  EXPECT_EQ(EncodeLabeledName("m", {}), "m");
  EXPECT_EQ(EncodeLabeledName("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=\"1\",b=\"2\"}");
  EXPECT_EQ(EncodeLabeledName("m", {{"k", "a\"b\\c"}}),
            "m{k=\"a\\\"b\\\\c\"}");
}

TEST(DecodeLabeledNameTest, RoundTripsEncodedNames) {
  const LabelSet labels{{"tenant", "t\"0"}, {"gen", "a\\b"}};
  const std::string encoded = EncodeLabeledName("incr.batch_seconds", labels);
  const DecodedName decoded = DecodeLabeledName(encoded);
  EXPECT_EQ(decoded.base, "incr.batch_seconds");
  ASSERT_EQ(decoded.labels.size(), 2u);
  EXPECT_EQ(decoded.labels[0].first, "gen");
  EXPECT_EQ(decoded.labels[0].second, "a\\b");
  EXPECT_EQ(decoded.labels[1].first, "tenant");
  EXPECT_EQ(decoded.labels[1].second, "t\"0");
}

TEST(DecodeLabeledNameTest, PlainAndMalformedNamesFallBackToBase) {
  EXPECT_EQ(DecodeLabeledName("plain.name").base, "plain.name");
  EXPECT_TRUE(DecodeLabeledName("plain.name").labels.empty());
  // Unterminated quote: whole string becomes the base, never a crash.
  const DecodedName bad = DecodeLabeledName("m{k=\"unterminated}");
  EXPECT_EQ(bad.base, "m{k=\"unterminated}");
  EXPECT_TRUE(bad.labels.empty());
}

TEST(CounterFamilyTest, WithIsOrderInsensitiveAndStable) {
  CounterFamily& family = LabeledCounter("test.labels.stable");
  Counter& a = family.With({{"x", "1"}, {"y", "2"}});
  Counter& b = family.With({{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  a.ResetForTest();
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
  // The child is a real registry metric under the encoded name.
  EXPECT_EQ(a.name(), "test.labels.stable{x=\"1\",y=\"2\"}");
  EXPECT_EQ(&Registry::Global().Counter("test.labels.stable{x=\"1\",y=\"2\"}"),
            &a);
}

TEST(CounterFamilyTest, RepeatedLookupReturnsSameFamily) {
  CounterFamily& a = LabeledCounter("test.labels.family_identity");
  CounterFamily& b = LabeledCounter("test.labels.family_identity");
  EXPECT_EQ(&a, &b);
}

TEST(CounterFamilyTest, CapRoutesToOverflowChildAndCountsDrops) {
  Counter& dropped = LabelsDroppedCounter();
  dropped.ResetForTest();
  CounterFamily& family = LabeledCounter("test.labels.capped", 3);
  for (int k = 0; k < 3; ++k) {
    family.With({{"id", std::to_string(k)}}).Increment();
  }
  EXPECT_EQ(family.labelset_count(), 3u);
  EXPECT_EQ(dropped.Value(), 0u);

  Counter& over_a = family.With({{"id", "3"}});
  Counter& over_b = family.With({{"id", "4"}});
  // Past the cap every new labelset shares the one overflow child.
  EXPECT_EQ(&over_a, &over_b);
  EXPECT_EQ(over_a.name(), "test.labels.capped{overflow=\"true\"}");
  EXPECT_EQ(family.labelset_count(), 3u);
  EXPECT_EQ(dropped.Value(), 2u);
  // Already-admitted labelsets keep resolving to their own children.
  EXPECT_EQ(family.With({{"id", "0"}}).name(),
            "test.labels.capped{id=\"0\"}");
}

TEST(GaugeFamilyTest, ChildrenAreIndependent) {
  GaugeFamily& family = LabeledGauge("test.labels.gauges");
  family.With({{"node", "a"}}).Set(1.0);
  family.With({{"node", "b"}}).Set(2.0);
  EXPECT_DOUBLE_EQ(family.With({{"node", "a"}}).Value(), 1.0);
  EXPECT_DOUBLE_EQ(family.With({{"node", "b"}}).Value(), 2.0);
}

TEST(HistogramFamilyTest, ChildrenShareFamilyBounds) {
  HistogramFamily& family =
      LabeledHistogram("test.labels.histograms", {1.0, 2.0});
  Histogram& child = family.With({{"phase", "x"}});
  ASSERT_EQ(child.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(child.bounds()[0], 1.0);
  child.ResetForTest();
  child.Record(1.5);
  EXPECT_EQ(child.TotalCount(), 1u);
}

TEST(CounterFamilyTest, ConcurrentResolutionWithStripeSharingIsExact) {
  // More threads than stripes AND concurrent first-touch resolution: the
  // family mutex serializes child creation, the striped cells absorb the
  // increments, and the totals must still be exact.
  CounterFamily& family = LabeledCounter("test.labels.concurrent");
  constexpr int kThreads = 3 * kStripes;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<Counter*> handles(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &family, &handles] {
      const char* shard = (t % 2 == 0) ? "even" : "odd";
      Counter& child = family.With({{"shard", shard}});
      handles[static_cast<size_t>(t)] = &child;
      for (uint64_t k = 0; k < kPerThread; ++k) child.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Handle reuse: every even thread got one pointer, every odd the other.
  for (int t = 2; t < kThreads; ++t) {
    EXPECT_EQ(handles[static_cast<size_t>(t)],
              handles[static_cast<size_t>(t % 2)]);
  }
  const uint64_t even = family.With({{"shard", "even"}}).Value();
  const uint64_t odd = family.With({{"shard", "odd"}}).Value();
  EXPECT_EQ(even + odd, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(even, static_cast<uint64_t>(kThreads / 2) * kPerThread);
}

TEST(LabeledSnapshotTest, EncodedNamesSerializeToValidJson) {
  CounterFamily& family = LabeledCounter("test.labels.json");
  family.With({{"q", "a\"b"}}).Increment();
  const std::string json = Registry::Global().Snapshot().ToJson();
  // The encoded name's inner quote must be escaped in the JSON key.
  EXPECT_NE(json.find("test.labels.json{q=\\\"a\\\\\\\"b\\\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace conservation::obs
