#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>

#include "util/parallel.h"
#include "util/thread_pool.h"

namespace conservation::util {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const int64_t count = 1000;
  std::vector<std::atomic<int>> visits(count);
  ParallelFor(count, 4, [&](int64_t i) {
    visits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < count; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ParallelForTest, ZeroAndNegativeCounts) {
  int calls = 0;
  ParallelFor(0, 4, [&](int64_t) { ++calls; });
  ParallelFor(-5, 4, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SingleThreadIsSequential) {
  std::vector<int64_t> order;
  ParallelFor(10, 1, [&](int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(3, 64, [&](int64_t i) {
    visits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, HardwareConcurrencyDefault) {
  std::atomic<int64_t> sum{0};
  ParallelFor(500, 0, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 500 * 499 / 2);
}

TEST(ParallelForTest, RepeatedCallsReuseTheSharedPool) {
  // The pool is persistent: many parallel sections in a row must all
  // complete and visit every index exactly once.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(64, 4, [&](int64_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), 64 * 65 / 2) << "round " << round;
  }
}

TEST(ParallelForTest, NestedParallelSectionsDoNotDeadlock) {
  // Outer lanes wait for inner sections; waiters must help drain the pool
  // queue instead of starving it (RankNodesByFailure over sharded
  // generation has exactly this shape).
  std::atomic<int64_t> visits{0};
  ParallelFor(8, 8, [&](int64_t) {
    ParallelFor(16, 4, [&](int64_t) { visits.fetch_add(1); });
  });
  EXPECT_EQ(visits.load(), 8 * 16);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  const int kTasks = 40;
  for (int k = 0; k < kTasks; ++k) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kTasks) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == kTasks; });
  EXPECT_EQ(done, kTasks);
}

TEST(ThreadPoolTest, RunOneTaskDrainsQueueFromCaller) {
  // A pool sized 1 whose worker is parked on a slow task: the caller can
  // steal queued tasks (this is the help-while-wait primitive).
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> parked{false};
  pool.Submit([&] {
    parked.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  while (!parked.load()) std::this_thread::yield();

  // The only worker is parked; these can only run via the caller.
  std::atomic<int> ran{0};
  pool.Submit([&] { ran.fetch_add(1); });
  pool.Submit([&] { ran.fetch_add(1); });
  while (pool.RunOneTask()) {
  }
  EXPECT_EQ(ran.load(), 2);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1);
}

}  // namespace
}  // namespace conservation::util
