#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/parallel.h"

namespace conservation::util {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const int64_t count = 1000;
  std::vector<std::atomic<int>> visits(count);
  ParallelFor(count, 4, [&](int64_t i) {
    visits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < count; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ParallelForTest, ZeroAndNegativeCounts) {
  int calls = 0;
  ParallelFor(0, 4, [&](int64_t) { ++calls; });
  ParallelFor(-5, 4, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SingleThreadIsSequential) {
  std::vector<int64_t> order;
  ParallelFor(10, 1, [&](int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(3, 64, [&](int64_t i) {
    visits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, HardwareConcurrencyDefault) {
  std::atomic<int64_t> sum{0};
  ParallelFor(500, 0, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 500 * 499 / 2);
}

}  // namespace
}  // namespace conservation::util
