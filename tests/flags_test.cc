#include <gtest/gtest.h>

#include "util/flags.h"

namespace conservation::util {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  FlagParser parser;
  const Status status =
      parser.Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return parser;
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser flags = Parse({"--name=value", "--n=42", "--x=2.5"});
  EXPECT_EQ(flags.GetStringOr("name", ""), "value");
  EXPECT_EQ(*flags.GetIntOr("n", 0), 42);
  EXPECT_DOUBLE_EQ(*flags.GetDoubleOr("x", 0.0), 2.5);
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser flags = Parse({"--name", "value", "--n", "7"});
  EXPECT_EQ(flags.GetStringOr("name", ""), "value");
  EXPECT_EQ(*flags.GetIntOr("n", 0), 7);
}

TEST(FlagParserTest, BareBooleans) {
  FlagParser flags = Parse({"--verbose", "--strict=false", "--on=yes"});
  EXPECT_TRUE(*flags.GetBoolOr("verbose", false));
  EXPECT_FALSE(*flags.GetBoolOr("strict", true));
  EXPECT_TRUE(*flags.GetBoolOr("on", false));
  EXPECT_TRUE(*flags.GetBoolOr("absent", true));
}

TEST(FlagParserTest, Defaults) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetStringOr("missing", "fallback"), "fallback");
  EXPECT_EQ(*flags.GetIntOr("missing", -3), -3);
  EXPECT_DOUBLE_EQ(*flags.GetDoubleOr("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagParserTest, Positionals) {
  FlagParser flags = Parse({"--a=1", "input.csv", "second"});
  // Note: "--a 1" form consumes the next token, so positionals here are
  // only the non-flag leftovers.
  ASSERT_EQ(flags.positionals().size(), 2u);
  EXPECT_EQ(flags.positionals()[0], "input.csv");
  EXPECT_EQ(flags.positionals()[1], "second");
}

TEST(FlagParserTest, TypeErrors) {
  FlagParser flags = Parse({"--n=abc", "--x=1.2.3", "--b=maybe"});
  EXPECT_FALSE(flags.GetIntOr("n", 0).ok());
  EXPECT_FALSE(flags.GetDoubleOr("x", 0.0).ok());
  EXPECT_FALSE(flags.GetBoolOr("b", false).ok());
}

TEST(FlagParserTest, MalformedFlag) {
  const char* args[] = {"binary", "--=oops"};
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(2, args).ok());
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(*flags.GetIntOr("n", 0), 2);
}

TEST(FlagParserTest, SpaceFormFollowedByFlagIsBoolean) {
  FlagParser flags = Parse({"--verbose", "--n=3"});
  EXPECT_TRUE(*flags.GetBoolOr("verbose", false));
  EXPECT_EQ(*flags.GetIntOr("n", 0), 3);
}

}  // namespace
}  // namespace conservation::util
