#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"

namespace conservation::obs {
namespace {

// Tests share the global registry; metric names are unique per test case
// and aggregators are local (the Global() instance is not touched).

const WindowedCounter* FindCounter(const WindowSnapshot& snapshot,
                                   const std::string& name) {
  for (const WindowedCounter& counter : snapshot.counters) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

const WindowedHistogram* FindHistogram(const WindowSnapshot& snapshot,
                                       const std::string& name) {
  for (const WindowedHistogram& histogram : snapshot.histograms) {
    if (histogram.name == name) return &histogram;
  }
  return nullptr;
}

TEST(QuantileFromBucketsTest, InterpolatesWithinBuckets) {
  // Bounds {10, 20, 30}: 4 buckets. 10 samples in bucket 1 ([10, 20)).
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  const std::vector<uint64_t> counts = {0, 10, 0, 0};
  // Median rank = 5 of 10 -> halfway through [10, 20).
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, 1.0), 20.0);
}

TEST(QuantileFromBucketsTest, FirstBucketAnchorsAtZero) {
  const std::vector<double> bounds = {10.0, 20.0};
  const std::vector<uint64_t> counts = {10, 0, 0};
  // Lower edge of bucket 0 is min(0, b_0) = 0.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, 0.5), 5.0);
}

TEST(QuantileFromBucketsTest, OverflowBucketClampsToLastBound) {
  const std::vector<double> bounds = {10.0, 20.0};
  const std::vector<uint64_t> counts = {0, 0, 7};  // all in overflow
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, 0.99), 20.0);
}

TEST(QuantileFromBucketsTest, EmptyCountsReturnZero) {
  EXPECT_DOUBLE_EQ(
      QuantileFromBuckets({1.0, 2.0}, {0, 0, 0}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({}, {}, 0.5), 0.0);
}

TEST(WindowAggregatorTest, EmptyWindowReportsZeroDeltas) {
  WindowAggregator window;
  const WindowSnapshot snapshot = window.SnapshotAt(5.0);
  EXPECT_EQ(snapshot.epochs, 0);
  EXPECT_DOUBLE_EQ(snapshot.span_seconds, 0.0);
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(WindowAggregatorTest, DeltasAndRatesAgainstOldestEpoch) {
  Counter& counter = Registry::Global().Counter("test.window.counter");
  counter.ResetForTest();
  counter.Add(100);

  WindowAggregator window;
  window.AdvanceAt(10.0);  // baseline epoch: counter = 100
  counter.Add(60);
  const WindowSnapshot snapshot = window.SnapshotAt(14.0);
  EXPECT_EQ(snapshot.epochs, 1);
  EXPECT_DOUBLE_EQ(snapshot.span_seconds, 4.0);
  const WindowedCounter* windowed =
      FindCounter(snapshot, "test.window.counter");
  ASSERT_NE(windowed, nullptr);
  EXPECT_EQ(windowed->delta, 60u);
  EXPECT_DOUBLE_EQ(windowed->rate_per_sec, 15.0);
}

TEST(WindowAggregatorTest, RingEvictsOldestEpoch) {
  Counter& counter = Registry::Global().Counter("test.window.evict");
  counter.ResetForTest();

  WindowOptions options;
  options.num_epochs = 3;
  WindowAggregator window(options);
  // Epochs at t=1 (0), t=2 (10), t=3 (20), t=4 (30): capacity 3 keeps the
  // epochs at t=2..4, so the baseline is counter=10 at t=2.
  for (int k = 0; k < 4; ++k) {
    window.AdvanceAt(static_cast<double>(k + 1));
    counter.Add(10);
  }
  const WindowSnapshot snapshot = window.SnapshotAt(6.0);
  EXPECT_EQ(snapshot.epochs, 3);
  EXPECT_DOUBLE_EQ(snapshot.span_seconds, 4.0);  // 6.0 - t=2
  const WindowedCounter* windowed = FindCounter(snapshot, "test.window.evict");
  ASSERT_NE(windowed, nullptr);
  EXPECT_EQ(windowed->delta, 30u);  // 40 now - 10 at baseline
}

TEST(WindowAggregatorTest, HistogramWindowQuantiles) {
  Histogram& histogram = Registry::Global().Histogram(
      "test.window.histogram", {10.0, 20.0, 30.0});
  histogram.ResetForTest();
  // Pre-window noise that must not leak into the windowed distribution.
  for (int k = 0; k < 50; ++k) histogram.Record(35.0);

  WindowAggregator window;
  window.AdvanceAt(100.0);
  for (int k = 0; k < 10; ++k) histogram.Record(15.0);  // bucket 1
  const WindowSnapshot snapshot = window.SnapshotAt(105.0);
  const WindowedHistogram* windowed =
      FindHistogram(snapshot, "test.window.histogram");
  ASSERT_NE(windowed, nullptr);
  EXPECT_EQ(windowed->count, 10u);
  EXPECT_DOUBLE_EQ(windowed->rate_per_sec, 2.0);
  EXPECT_DOUBLE_EQ(windowed->sum, 150.0);
  // All 10 windowed records sit in [10, 20): quantiles interpolate there,
  // ignoring the 50 overflow records from before the window.
  EXPECT_DOUBLE_EQ(windowed->p50, 15.0);
  EXPECT_GT(windowed->p99, 19.0);
  EXPECT_LE(windowed->p99, 20.0);
}

TEST(WindowAggregatorTest, ResetBetweenEpochsDoesNotUnderflow) {
  Counter& counter = Registry::Global().Counter("test.window.reset");
  counter.ResetForTest();
  counter.Add(1000);
  WindowAggregator window;
  window.AdvanceAt(1.0);  // baseline 1000
  counter.ResetForTest();  // registry reset mid-window
  counter.Add(5);
  const WindowSnapshot snapshot = window.SnapshotAt(2.0);
  const WindowedCounter* windowed = FindCounter(snapshot, "test.window.reset");
  ASSERT_NE(windowed, nullptr);
  // Guarded subtraction: a shrunk value reports itself, never wraps.
  EXPECT_EQ(windowed->delta, 5u);
}

TEST(WindowSnapshotTest, ToJsonIsWellFormedAndCarriesQuantiles) {
  Counter& counter = Registry::Global().Counter("test.window.json");
  counter.ResetForTest();
  WindowAggregator window;
  window.AdvanceAt(0.0);
  counter.Add(4);
  const std::string json = window.SnapshotAt(2.0).ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"span_seconds\":2"), std::string::npos);
  EXPECT_NE(json.find("\"test.window.json\":{\"delta\":4,\"rate\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
}

TEST(WindowAggregatorTest, GlobalIsSharedAndResettable) {
  WindowAggregator& global = WindowAggregator::Global();
  EXPECT_EQ(&global, &WindowAggregator::Global());
  global.ResetForTest();
  EXPECT_EQ(global.Snapshot().epochs, 0);
}

}  // namespace
}  // namespace conservation::obs
