#include <gtest/gtest.h>

#include "matching/rightward_matching.h"
#include "series/cumulative.h"
#include "series/sequence.h"
#include "util/random.h"

namespace conservation::matching {
namespace {

using series::CountSequence;
using series::CumulativeSeries;

// Paper Figure 2(a) without the unmatched 7-in event: a = <2,0,1,1,2>,
// b = <3,1,1,1,0> (total 6 in, 6 out), delay of every rightward perfect
// matching is seven.
class Figure2WithoutSeventhEvent : public ::testing::Test {
 protected:
  Figure2WithoutSeventhEvent()
      : counts_(*CountSequence::Create({2, 0, 1, 1, 2}, {3, 1, 1, 1, 0})),
        cumulative_(counts_) {}

  CountSequence counts_;
  CumulativeSeries cumulative_;
};

TEST_F(Figure2WithoutSeventhEvent, MatchingExists) {
  EXPECT_TRUE(RightwardMatchingExists(cumulative_));
}

TEST_F(Figure2WithoutSeventhEvent, LemmaTwoDelayIsSeven) {
  EXPECT_DOUBLE_EQ(RightwardMatchingDelay(cumulative_), 7.0);
}

TEST_F(Figure2WithoutSeventhEvent, FifoAndLifoHaveEqualDelay) {
  auto fifo = BuildRightwardMatching(counts_, MatchPolicy::kFifo);
  auto lifo = BuildRightwardMatching(counts_, MatchPolicy::kLifo);
  ASSERT_TRUE(fifo.ok());
  ASSERT_TRUE(lifo.ok());
  EXPECT_DOUBLE_EQ(MatchingDelay(*fifo), 7.0);
  EXPECT_DOUBLE_EQ(MatchingDelay(*lifo), 7.0);
}

TEST_F(Figure2WithoutSeventhEvent, EdgesAreRightward) {
  auto fifo = BuildRightwardMatching(counts_, MatchPolicy::kFifo);
  ASSERT_TRUE(fifo.ok());
  double total = 0.0;
  for (const MatchGroup& group : *fifo) {
    EXPECT_LE(group.inbound_time, group.outbound_time);
    EXPECT_GT(group.count, 0.0);
    total += group.count;
  }
  EXPECT_DOUBLE_EQ(total, 6.0);  // all six events matched
}

TEST(RightwardMatchingTest, Lemma1FailsWithoutEqualTotals) {
  auto counts = CountSequence::Create({2, 0, 1, 1, 2}, {3, 1, 1, 2, 0});
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  EXPECT_FALSE(RightwardMatchingExists(cumulative));  // A_n=6 != B_n=7
  EXPECT_FALSE(BuildRightwardMatching(*counts, MatchPolicy::kFifo).ok());
}

TEST(RightwardMatchingTest, Lemma1FailsWithoutDominance) {
  auto counts = CountSequence::Create({2, 0}, {0, 2});
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  EXPECT_FALSE(RightwardMatchingExists(cumulative));
  EXPECT_FALSE(BuildRightwardMatching(*counts, MatchPolicy::kFifo).ok());
}

TEST(RightwardMatchingTest, FractionalCounts) {
  auto counts = CountSequence::Create({0.5, 1.5}, {1.0, 1.0});
  ASSERT_TRUE(counts.ok());
  auto matching = BuildRightwardMatching(*counts, MatchPolicy::kFifo);
  ASSERT_TRUE(matching.ok());
  // Delay = sum(B - A) = (1 - 0.5) + (2 - 2) = 0.5.
  EXPECT_NEAR(MatchingDelay(*matching), 0.5, 1e-9);
}

// Lemma 2 as a property: on random balanced data, FIFO delay == LIFO delay
// == sum(B - A).
class MatchingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingProperty, AllPoliciesGiveTheLemmaDelay) {
  util::Rng rng(GetParam());
  const int64_t n = 50;
  std::vector<double> a(n, 0.0);
  std::vector<double> b(n, 0.0);
  // Generate events and both endpoints to guarantee Lemma 1's conditions.
  for (int event = 0; event < 200; ++event) {
    const int64_t arrive = rng.UniformInt(0, n - 1);
    const int64_t depart = rng.UniformInt(arrive, n - 1);
    b[static_cast<size_t>(arrive)] += 1.0;
    a[static_cast<size_t>(depart)] += 1.0;
  }
  auto counts = CountSequence::Create(std::move(a), std::move(b));
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  ASSERT_TRUE(RightwardMatchingExists(cumulative));

  const double lemma_delay = RightwardMatchingDelay(cumulative);
  auto fifo = BuildRightwardMatching(*counts, MatchPolicy::kFifo);
  auto lifo = BuildRightwardMatching(*counts, MatchPolicy::kLifo);
  ASSERT_TRUE(fifo.ok());
  ASSERT_TRUE(lifo.ok());
  EXPECT_NEAR(MatchingDelay(*fifo), lemma_delay, 1e-9);
  EXPECT_NEAR(MatchingDelay(*lifo), lemma_delay, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperty,
                         ::testing::Values(3, 7, 31, 127, 8191));

}  // namespace
}  // namespace conservation::matching
