// Reproduces the worked example of paper §III.A: the hold-tableau interval
// selection on a = <5,8,6,8,7,4,3,20,11,7>, b = <10,8,11,13,6,6,5,9,12,6>
// with eps = 1 and Delta = 3.
//
// Note: the paper's running text around this example contains small
// arithmetic slips (e.g. it lists conf(3,7) = 94/121, mixing the [3,7]
// numerator with the [3,6] denominator, and claims areaB[3,10] = 362 > 384).
// The assertions below follow the paper's *definitions*, under which the
// final answer (interval [3, 10] is selected for anchor 3) is unchanged.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/confidence.h"
#include "interval/area_based.h"
#include "interval/exhaustive.h"
#include "series/cumulative.h"
#include "series/sequence.h"

namespace conservation::interval {
namespace {

class WorkedExample : public ::testing::Test {
 protected:
  WorkedExample()
      : counts_(*series::CountSequence::Create(
            {5, 8, 6, 8, 7, 4, 3, 20, 11, 7},
            {10, 8, 11, 13, 6, 6, 5, 9, 12, 6})),
        cumulative_(counts_),
        eval_(&cumulative_, core::ConfidenceModel::kBalance) {}

  series::CountSequence counts_;
  series::CumulativeSeries cumulative_;
  core::ConfidenceEvaluator eval_;
};

TEST_F(WorkedExample, CumulativeSeriesMatchPaper) {
  const double expected_A[] = {0, 5, 13, 19, 27, 34, 38, 41, 61, 72, 79};
  const double expected_B[] = {0, 10, 18, 29, 42, 48, 54, 59, 68, 80, 86};
  for (int64_t l = 0; l <= 10; ++l) {
    EXPECT_DOUBLE_EQ(cumulative_.A(l), expected_A[l]) << "l=" << l;
    EXPECT_DOUBLE_EQ(cumulative_.B(l), expected_B[l]) << "l=" << l;
  }
  EXPECT_DOUBLE_EQ(cumulative_.delta(), 3.0);
  // areaB(1, 10) = sum B_l = 494 (baseline A_0 = 0).
  EXPECT_DOUBLE_EQ(eval_.AreaB(1, 10), 494.0);
}

TEST_F(WorkedExample, AreasForAnchorThree) {
  // Baseline for i = 3 is A_2 = 13.
  EXPECT_DOUBLE_EQ(eval_.AreaB(3, 3), 16.0);
  EXPECT_DOUBLE_EQ(eval_.AreaB(3, 4), 45.0);
  EXPECT_DOUBLE_EQ(eval_.AreaB(3, 5), 80.0);
  EXPECT_DOUBLE_EQ(eval_.AreaB(3, 6), 121.0);
  EXPECT_DOUBLE_EQ(eval_.AreaB(3, 7), 167.0);
  EXPECT_DOUBLE_EQ(eval_.AreaB(3, 8), 222.0);
  EXPECT_DOUBLE_EQ(eval_.AreaB(3, 9), 289.0);
  EXPECT_DOUBLE_EQ(eval_.AreaB(3, 10), 362.0);
}

TEST_F(WorkedExample, ConfidencesForAnchorThree) {
  EXPECT_DOUBLE_EQ(*eval_.Confidence(3, 3), 6.0 / 16.0);
  EXPECT_DOUBLE_EQ(*eval_.Confidence(3, 4), 20.0 / 45.0);
  EXPECT_DOUBLE_EQ(*eval_.Confidence(3, 5), 41.0 / 80.0);
  EXPECT_DOUBLE_EQ(*eval_.Confidence(3, 7), 94.0 / 167.0);
  EXPECT_DOUBLE_EQ(*eval_.Confidence(3, 9), 201.0 / 289.0);
  EXPECT_DOUBLE_EQ(*eval_.Confidence(3, 10), 267.0 / 362.0);
}

// The breakpoints r_{3,l} for thresholds Delta * 2^l:
//   l = 0..2: none (16 > 3, 6, 12); l = 3: 3; l = 4: 4; l = 5: 5;
//   l = 6: 7; l = 7: 10 (areaB[3,10] = 362 <= 384).
TEST_F(WorkedExample, BreakpointsForAnchorThree) {
  const double thresholds[] = {3, 6, 12, 24, 48, 96, 192, 384};
  const int64_t expected_r[] = {0, 0, 0, 3, 4, 5, 7, 10};
  for (int level = 0; level < 8; ++level) {
    int64_t r = 0;
    for (int64_t j = 3; j <= 10; ++j) {
      if (eval_.AreaB(3, j) <= thresholds[level]) r = j;
    }
    EXPECT_EQ(r, expected_r[level]) << "level " << level;
  }
}

TEST_F(WorkedExample, AreaBasedSelectsLongestQualifyingInterval) {
  GeneratorOptions options;
  options.type = core::TableauType::kHold;
  options.c_hat = 1.0;
  options.epsilon = 1.0;  // threshold c_hat / (1 + eps) = 0.5
  AreaBasedGenerator generator;
  GeneratorStats stats;
  const std::vector<Interval> candidates =
      generator.Generate(eval_, options, &stats);

  const auto at_anchor_3 =
      std::find_if(candidates.begin(), candidates.end(),
                   [](const Interval& iv) { return iv.begin == 3; });
  ASSERT_NE(at_anchor_3, candidates.end());
  EXPECT_EQ(at_anchor_3->end, 10);
  EXPECT_GT(stats.intervals_tested, 0u);
}

TEST_F(WorkedExample, DeltaModeOneUsesUnitBase) {
  GeneratorOptions options;
  options.delta_mode = DeltaMode::kOne;
  EXPECT_DOUBLE_EQ(ResolveDelta(cumulative_, options), 1.0);
  options.delta_mode = DeltaMode::kMinPositiveCount;
  EXPECT_DOUBLE_EQ(ResolveDelta(cumulative_, options), 3.0);
}

TEST_F(WorkedExample, ScaleInvariance) {
  // §III.A: multiplying both sequences by a positive scalar changes neither
  // the answers nor (asymptotically) the running time.
  GeneratorOptions options;
  options.type = core::TableauType::kHold;
  options.c_hat = 0.8;
  options.epsilon = 0.25;

  AreaBasedGenerator generator;
  const std::vector<Interval> base =
      generator.Generate(eval_, options, nullptr);

  const series::CountSequence scaled = counts_.Scaled(37.5);
  const series::CumulativeSeries scaled_cumulative(scaled);
  const core::ConfidenceEvaluator scaled_eval(&scaled_cumulative,
                                              core::ConfidenceModel::kBalance);
  const std::vector<Interval> scaled_result =
      generator.Generate(scaled_eval, options, nullptr);
  EXPECT_EQ(base, scaled_result);
}

TEST_F(WorkedExample, ExhaustiveFindsPerAnchorOptimum) {
  GeneratorOptions options;
  options.type = core::TableauType::kHold;
  options.c_hat = 0.5;
  ExhaustiveGenerator generator;
  GeneratorStats stats;
  const std::vector<Interval> candidates =
      generator.Generate(eval_, options, &stats);
  // n = 10 => 55 interval tests.
  EXPECT_EQ(stats.intervals_tested, 55u);
  // Anchor 3's largest j with conf >= 0.5 is 10 (conf = 0.7376).
  const auto at_anchor_3 =
      std::find_if(candidates.begin(), candidates.end(),
                   [](const Interval& iv) { return iv.begin == 3; });
  ASSERT_NE(at_anchor_3, candidates.end());
  EXPECT_EQ(at_anchor_3->end, 10);
}

}  // namespace
}  // namespace conservation::interval
