#include <gtest/gtest.h>

#include "core/analysis.h"
#include "datagen/power_grid.h"
#include "tests/test_data.h"

namespace conservation::core {
namespace {

TEST(ThresholdSweepTest, MonotoneCoverageForFailTableaux) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(41, 150);
  auto rule = ConservationRule::Create(counts);
  ASSERT_TRUE(rule.ok());

  TableauRequest request;
  request.type = TableauType::kFail;
  request.s_hat = 1.0;  // cover as much as candidates allow
  auto sweep =
      ThresholdSweep(*rule, request, {0.1, 0.3, 0.5, 0.7, 0.9});
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 5u);
  // Raising the fail threshold only admits more intervals: coverage is
  // nondecreasing in c_hat.
  for (size_t k = 1; k < sweep->size(); ++k) {
    EXPECT_GE((*sweep)[k].covered, (*sweep)[k - 1].covered)
        << "c_hat=" << (*sweep)[k].c_hat;
  }
}

TEST(ThresholdSweepTest, PropagatesValidationErrors) {
  auto rule = ConservationRule::Create({1.0, 2.0}, {2.0, 2.0});
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  auto sweep = ThresholdSweep(*rule, request, {0.5, 1.5});
  EXPECT_FALSE(sweep.ok());
}

TEST(ConfidenceProfileTest, LengthAndValues) {
  auto rule = ConservationRule::Create({5, 5, 0, 5, 5}, {5, 5, 5, 5, 5});
  ASSERT_TRUE(rule.ok());
  const std::vector<double> profile =
      ConfidenceProfile(*rule, ConfidenceModel::kBalance, 2);
  ASSERT_EQ(profile.size(), 4u);  // t = 2..5
  // Window [2,3] spans the dead tick: depressed confidence.
  EXPECT_LT(profile[1], profile[0]);
  // Profile values match direct evaluation.
  const ConfidenceEvaluator eval = rule->Evaluator(ConfidenceModel::kBalance);
  for (size_t k = 0; k < profile.size(); ++k) {
    const int64_t t = 2 + static_cast<int64_t>(k);
    const auto direct = eval.Confidence(t - 1, t);
    EXPECT_DOUBLE_EQ(profile[k], direct.value_or(-1.0));
  }
}

TEST(ConfidenceProfileTest, FullWindowIsSinglePoint) {
  auto rule = ConservationRule::Create({1, 1, 1}, {1, 1, 1});
  ASSERT_TRUE(rule.ok());
  const std::vector<double> profile =
      ConfidenceProfile(*rule, ConfidenceModel::kBalance, 3);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile[0], 1.0);
}

TEST(RankBySeverityTest, OrdersByMisplacedMass) {
  // Two failures far enough apart that no single interval below the
  // threshold spans both: a heavy outage (ticks 3-8) and a light one
  // (ticks 42-43) in an otherwise-perfect 50-tick trace.
  std::vector<double> a(50, 9.0);
  std::vector<double> b(50, 9.0);
  for (int t = 2; t <= 7; ++t) a[static_cast<size_t>(t)] = 0.0;
  for (int t = 41; t <= 42; ++t) a[static_cast<size_t>(t)] = 0.0;
  auto rule = ConservationRule::Create(a, b);
  ASSERT_TRUE(rule.ok());

  TableauRequest request;
  request.type = TableauType::kFail;
  request.c_hat = 0.4;
  request.s_hat = 0.5;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  ASSERT_GE(tableau->size(), 2u);

  // Rank under the debit model: severity should reflect mass misplaced
  // *inside* each interval, not the imbalance inherited from earlier
  // outages (which the balance model rightly charges to later intervals).
  const auto ranked =
      RankBySeverity(*rule, ConfidenceModel::kDebit, *tableau);
  ASSERT_EQ(ranked.size(), tableau->size());
  for (size_t k = 1; k < ranked.size(); ++k) {
    EXPECT_GE(ranked[k - 1].misplaced_mass, ranked[k].misplaced_mass);
  }
  // The heavy outage ranks first and overlaps ticks 3-8.
  EXPECT_TRUE(ranked.front().interval.Overlaps({3, 8}));
  EXPECT_TRUE(ranked.back().interval.Overlaps({42, 50}));
}

// Power-grid scenario exercised through the analysis helpers: theft is a
// persistent violation (profile stays low after onset), an outage is
// transient (profile recovers).
TEST(PowerGridAnalysisTest, TheftVersusOutageProfiles) {
  datagen::PowerGridParams theft_params;
  theft_params.theft_start_tick = 1000;
  theft_params.theft_fraction = 0.8;
  const datagen::PowerGridData theft = datagen::GeneratePowerGrid(theft_params);

  datagen::PowerGridParams outage_params;
  outage_params.outage_begin_tick = 1000;
  outage_params.outage_end_tick = 1200;
  const datagen::PowerGridData outage =
      datagen::GeneratePowerGrid(outage_params);

  auto theft_rule = ConservationRule::Create(theft.counts);
  auto outage_rule = ConservationRule::Create(outage.counts);
  ASSERT_TRUE(theft_rule.ok());
  ASSERT_TRUE(outage_rule.ok());

  const int64_t window = 96;  // one day
  const auto theft_profile =
      ConfidenceProfile(*theft_rule, ConfidenceModel::kDebit, window);
  const auto outage_profile =
      ConfidenceProfile(*outage_rule, ConfidenceModel::kDebit, window);

  // Late in the trace (well after both fault onsets), theft keeps the
  // windowed confidence depressed while the ended outage has recovered.
  const size_t late = theft_profile.size() - 200;
  EXPECT_LT(theft_profile[late], outage_profile[late] - 0.005);
  // Before the faults, both are equally healthy.
  EXPECT_NEAR(theft_profile[400], outage_profile[400], 0.02);
}

}  // namespace
}  // namespace conservation::core
