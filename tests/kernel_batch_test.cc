// Differential tests for the batch SIMD confidence kernels
// (interval/kernel_simd.h): every backend must reproduce the scalar
// kernel — and therefore core::ConfidenceEvaluator — bit for bit, on
// every model × tableau-type × series-shape combination, including the
// ragged tails shorter than a vector width (this suite also runs in the
// ASan ctest configuration to catch out-of-bounds lane reads there) and
// whole-generator runs across backends.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "core/confidence.h"
#include "core/model.h"
#include "interval/generator.h"
#include "interval/kernel.h"
#include "interval/kernel_simd.h"
#include "test_data.h"
#include "util/random.h"

namespace conservation {
namespace {

using core::ConfidenceEvaluator;
using core::ConfidenceModel;
using core::TableauType;
using interval::AlgorithmKind;
using interval::Candidate;
using interval::GeneratorOptions;
using interval::GeneratorStats;
using interval::internal::ActiveSimdBackend;
using interval::internal::ConfidenceKernel;
using interval::internal::SetSimdBackendForTest;
using interval::internal::SimdBackend;
using interval::internal::SimdBackendName;

// Restores the process-wide backend selection on scope exit, so tests can
// force backends without leaking the override into later tests.
class BackendGuard {
 public:
  BackendGuard() : saved_(ActiveSimdBackend()) {}
  ~BackendGuard() { SetSimdBackendForTest(saved_); }
  SimdBackend saved() const { return saved_; }

 private:
  const SimdBackend saved_;
};

// Backends exercised on this machine: the portable scalar reference plus
// whatever the runtime dispatch selected (avx2 / neon / scalar). Forcing a
// backend the CPU cannot execute would fault, so only the dispatched one
// is added.
std::vector<SimdBackend> TestableBackends() {
  std::vector<SimdBackend> backends{SimdBackend::kScalar};
  const SimdBackend active = ActiveSimdBackend();
  if (active != SimdBackend::kScalar) backends.push_back(active);
  return backends;
}

// Edge-shape series families alongside the random dominated generator:
//   near_zero_a  - outbound all zero except a single trailing 1 (the
//                  closest CountSequence admits to an all-zero a): numerator
//                  areas clamp to 0 almost everywhere.
//   zero_gap     - a == b everywhere, so every suffix min gap is 0 and
//                  credit/debit baselines coincide with balance.
//   saturated    - outbound spikes above the inbound baseline: raw areas go
//                  negative and the clamp saturates on both numerator and
//                  denominator.
series::CountSequence MakeFamily(const std::string& family, int64_t n) {
  if (family == "random") return testing_util::RandomDominatedCounts(7, n);
  std::vector<double> a(static_cast<size_t>(n), 0.0);
  std::vector<double> b(static_cast<size_t>(n), 0.0);
  util::Rng rng(13);
  if (family == "near_zero_a") {
    for (int64_t t = 0; t < n; ++t) {
      b[static_cast<size_t>(t)] = static_cast<double>(rng.Poisson(4.0));
    }
    b[0] += 1.0;  // ensure b is not identically zero
    a[static_cast<size_t>(n - 1)] = 1.0;
  } else if (family == "zero_gap") {
    for (int64_t t = 0; t < n; ++t) {
      const double v = static_cast<double>(rng.Poisson(3.0));
      a[static_cast<size_t>(t)] = v;
      b[static_cast<size_t>(t)] = v;
    }
    a[0] += 1.0;
    b[0] += 1.0;
  } else if (family == "saturated") {
    for (int64_t t = 0; t < n; ++t) {
      b[static_cast<size_t>(t)] = 1.0;
      a[static_cast<size_t>(t)] =
          rng.Bernoulli(0.2) ? static_cast<double>(rng.UniformInt(5, 20))
                             : 0.0;
    }
  } else {
    CR_UNREACHABLE();
  }
  auto counts = series::CountSequence::Create(std::move(a), std::move(b));
  CR_CHECK(counts.ok());
  return std::move(counts).value();
}

const std::string kFamilies[] = {"random", "near_zero_a", "zero_gap",
                                 "saturated"};
const ConfidenceModel kModels[] = {ConfidenceModel::kBalance,
                                   ConfidenceModel::kCredit,
                                   ConfidenceModel::kDebit};
const TableauType kTypes[] = {TableauType::kHold, TableauType::kFail};

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

// --- Kernel-level: batch outputs vs a loop over the scalar calls ----------

class KernelBatchBitIdentity
    : public ::testing::TestWithParam<
          std::tuple<std::string, ConfidenceModel, TableauType>> {};

TEST_P(KernelBatchBitIdentity, AllBatchFormsMatchScalarCalls) {
  const auto& [family, model, type] = GetParam();
  // 97 and 41 are deliberately not multiples of any vector width, so every
  // sweep ends in a ragged tail.
  const int64_t n = 97;
  const series::CountSequence counts = MakeFamily(family, n);
  const series::CumulativeSeries cumulative(counts);
  const ConfidenceEvaluator eval(&cumulative, model);

  BackendGuard guard;
  for (const SimdBackend backend : TestableBackends()) {
    SetSimdBackendForTest(backend);
    const ConfidenceKernel kernel(eval, type);
    SCOPED_TRACE(std::string("backend=") + SimdBackendName(backend));

    std::vector<double> batch_conf(static_cast<size_t>(n) + 1);
    std::vector<uint8_t> batch_valid(static_cast<size_t>(n) + 1);
    std::vector<double> batch_area(static_cast<size_t>(n) + 1);

    for (const int64_t i : {int64_t{1}, int64_t{2}, n / 3, n - 2, n}) {
      ConfidenceKernel scalar_kernel(eval, type);
      scalar_kernel.BeginAnchor(i);
      ConfidenceKernel batch_kernel(eval, type);
      batch_kernel.BeginAnchor(i);
      SCOPED_TRACE("anchor i=" + std::to_string(i));

      // Contiguous sweeps [i, n], including a short tail-only range.
      for (const int64_t j1 : {std::min(n, i + 2), n}) {
        batch_kernel.ConfidenceBatch(i, j1, batch_conf.data(),
                                     batch_valid.data());
        batch_kernel.SparseAreaBatch(i, j1, batch_area.data());
        for (int64_t j = i; j <= j1; ++j) {
          const size_t k = static_cast<size_t>(j - i);
          double conf = 0.0;
          const bool valid = scalar_kernel.Confidence(j, &conf);
          ASSERT_EQ(batch_valid[k], valid ? 1 : 0) << "j=" << j;
          ASSERT_EQ(Bits(batch_conf[k]), Bits(valid ? conf : 0.0))
              << "j=" << j;
          ASSERT_EQ(Bits(batch_area[k]), Bits(scalar_kernel.SparseArea(j)))
              << "j=" << j;
          // The kernel itself must agree with the evaluator's closed form.
          const std::optional<double> reference = eval.Confidence(i, j);
          ASSERT_EQ(valid, reference.has_value()) << "j=" << j;
          if (valid) {
            ASSERT_EQ(Bits(conf), Bits(*reference)) << "j=" << j;
          }
        }
      }

      // Index-list sweep over a strided, ascending endpoint list.
      std::vector<int64_t> js;
      for (int64_t j = i; j <= n; j += 1 + (j % 5)) js.push_back(j);
      batch_kernel.ConfidenceIndexBatch(js.data(),
                                        static_cast<int64_t>(js.size()),
                                        batch_conf.data(),
                                        batch_valid.data());
      for (size_t k = 0; k < js.size(); ++k) {
        double conf = 0.0;
        const bool valid = scalar_kernel.Confidence(js[k], &conf);
        ASSERT_EQ(batch_valid[k], valid ? 1 : 0) << "j=" << js[k];
        ASSERT_EQ(Bits(batch_conf[k]), Bits(valid ? conf : 0.0))
            << "j=" << js[k];
      }
    }

    // Right-anchored sweeps, short and long anchor lists.
    for (const int64_t j : {int64_t{41}, n}) {
      ConfidenceKernel scalar_kernel(eval, type);
      scalar_kernel.BeginRightAnchor(j);
      ConfidenceKernel batch_kernel(eval, type);
      batch_kernel.BeginRightAnchor(j);
      std::vector<int64_t> is;
      for (int64_t i = 1; i <= j; i += 1 + (i % 3)) is.push_back(i);
      batch_kernel.ConfidenceFromBatch(is.data(),
                                       static_cast<int64_t>(is.size()),
                                       batch_conf.data(),
                                       batch_valid.data());
      for (size_t k = 0; k < is.size(); ++k) {
        double conf = 0.0;
        const bool valid = scalar_kernel.ConfidenceFrom(is[k], &conf);
        ASSERT_EQ(batch_valid[k], valid ? 1 : 0)
            << "j=" << j << " i=" << is[k];
        ASSERT_EQ(Bits(batch_conf[k]), Bits(valid ? conf : 0.0))
            << "j=" << j << " i=" << is[k];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelBatchBitIdentity,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::ValuesIn(kModels),
                       ::testing::ValuesIn(kTypes)));

// --- Generator-level: whole runs across backends --------------------------

class GeneratorBackendBitIdentity
    : public ::testing::TestWithParam<
          std::tuple<std::string, ConfidenceModel, TableauType>> {};

TEST_P(GeneratorBackendBitIdentity, CandidatesAndCountersMatchScalar) {
  const auto& [family, model, type] = GetParam();
  const int64_t n = 97;
  const series::CountSequence counts = MakeFamily(family, n);
  const series::CumulativeSeries cumulative(counts);
  const ConfidenceEvaluator eval(&cumulative, model);

  const AlgorithmKind kinds[] = {
      AlgorithmKind::kExhaustive, AlgorithmKind::kAreaBased,
      AlgorithmKind::kAreaBasedOpt, AlgorithmKind::kNonAreaBased,
      AlgorithmKind::kNonAreaBasedOpt};

  BackendGuard guard;
  for (const AlgorithmKind kind : kinds) {
    // The §V NAB algorithms are balance-model only.
    if (model != ConfidenceModel::kBalance &&
        (kind == AlgorithmKind::kNonAreaBased ||
         kind == AlgorithmKind::kNonAreaBasedOpt)) {
      continue;
    }
    const auto generator = interval::MakeGenerator(kind);
    for (const double epsilon : {0.05, 0.5}) {
      for (const bool early_exit : {false, true}) {
        GeneratorOptions options;
        options.type = type;
        options.c_hat = type == TableauType::kHold ? 0.7 : 0.3;
        options.epsilon = epsilon;
        options.largest_first_early_exit = early_exit;
        SCOPED_TRACE(std::string(AlgorithmKindName(kind)) +
                     " eps=" + std::to_string(epsilon) +
                     " early_exit=" + std::to_string(early_exit));

        SetSimdBackendForTest(SimdBackend::kScalar);
        GeneratorStats scalar_stats;
        const std::vector<Candidate> scalar_out =
            generator->GenerateCandidates(eval, options, &scalar_stats);

        for (const SimdBackend backend : TestableBackends()) {
          SetSimdBackendForTest(backend);
          GeneratorStats stats;
          const std::vector<Candidate> out =
              generator->GenerateCandidates(eval, options, &stats);
          SCOPED_TRACE(std::string("backend=") + SimdBackendName(backend));
          ASSERT_EQ(out.size(), scalar_out.size());
          for (size_t k = 0; k < out.size(); ++k) {
            EXPECT_EQ(out[k].interval, scalar_out[k].interval);
            EXPECT_EQ(Bits(out[k].confidence),
                      Bits(scalar_out[k].confidence));
          }
          // Logical work counters feed crdiscover diagnostics and bench
          // records; they must not depend on the backend (speculative
          // batch lanes are uncounted by design).
          EXPECT_EQ(stats.intervals_tested, scalar_stats.intervals_tested);
          EXPECT_EQ(stats.endpoint_steps, scalar_stats.endpoint_steps);
          EXPECT_EQ(stats.candidates, scalar_stats.candidates);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorBackendBitIdentity,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::ValuesIn(kModels),
                       ::testing::ValuesIn(kTypes)));

}  // namespace
}  // namespace conservation
