#include <gtest/gtest.h>

#include "core/diagnose.h"
#include "core/multi_resolution.h"
#include "datagen/intersection.h"
#include "stream/multi_window_monitor.h"

namespace conservation {
namespace {

TEST(IntersectionTest, ShapeAndDominance) {
  const datagen::IntersectionData data = datagen::GenerateIntersection();
  EXPECT_EQ(data.counts.n(), 2880);
  const series::CumulativeSeries cumulative(data.counts);
  EXPECT_TRUE(cumulative.Dominates());
  // Two rush windows per day.
  EXPECT_EQ(data.rush_windows.size(), 2u);
}

TEST(IntersectionTest, RushHoursDepressConfidence) {
  const datagen::IntersectionData data = datagen::GenerateIntersection();
  auto rule = core::ConservationRule::Create(data.counts);
  ASSERT_TRUE(rule.ok());
  // An off-peak stretch conserves tightly; rush windows sit clearly below
  // it (congestion stretches transit from ~1 to ~7 ticks).
  const auto quiet =
      rule->Confidence(core::ConfidenceModel::kBalance, 1, 600);
  ASSERT_TRUE(quiet.has_value());
  EXPECT_GT(*quiet, 0.99);
  for (const auto& [begin, end] : data.rush_windows) {
    const auto rush_conf =
        rule->Confidence(core::ConfidenceModel::kBalance, begin, end);
    ASSERT_TRUE(rush_conf.has_value());
    EXPECT_LT(*rush_conf, *quiet - 0.03);
  }
}

TEST(IntersectionTest, RushIsDelayNotLoss) {
  const datagen::IntersectionData data = datagen::GenerateIntersection();
  const series::CumulativeSeries cumulative(data.counts);
  const auto& [begin, end] = data.rush_windows.front();
  const core::ViolationDiagnosis diagnosis =
      core::DiagnoseViolation(cumulative, {begin, end});
  EXPECT_NE(diagnosis.kind, core::ViolationKind::kLoss);
  EXPECT_GT(diagnosis.recovered_fraction, 0.5);
}

TEST(IntersectionTest, SensorOutageIsLossBoundedInTime) {
  datagen::IntersectionParams params;
  params.outage_begin_tick = 1200;
  params.outage_end_tick = 1400;
  const datagen::IntersectionData data =
      datagen::GenerateIntersection(params);
  const series::CumulativeSeries cumulative(data.counts);
  const core::ViolationDiagnosis diagnosis =
      core::DiagnoseViolation(cumulative, {1200, 1400});
  EXPECT_EQ(diagnosis.kind, core::ViolationKind::kLoss);
  EXPECT_GT(diagnosis.missing_mass, 100.0);
}

TEST(MultiResolutionTest, CoarseningAbsorbsShortDelays) {
  // Rush-hour delay is ~7 ticks; at a 64-tick resolution the fail tableau
  // should see far less (or nothing), while native resolution flags the
  // rush windows.
  const datagen::IntersectionData data = datagen::GenerateIntersection();
  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kBalance;
  request.c_hat = 0.7;
  request.s_hat = 0.02;
  auto scan =
      core::MultiResolutionScan(data.counts, request, {1, 8, 64, 512});
  ASSERT_TRUE(scan.ok());
  ASSERT_GE(scan->size(), 3u);

  // Native resolution flags the sub-bucket congestion pockets; by the
  // 64-tick resolution they are fully absorbed (the violations last ~7
  // ticks), so nothing fails any more.
  EXPECT_GT((*scan).front().covered_native_ticks, 0);
  EXPECT_EQ((*scan)[2].factor, 64);
  EXPECT_EQ((*scan)[2].covered_native_ticks, 0);
  EXPECT_EQ((*scan).back().covered_native_ticks, 0);
}

TEST(MultiResolutionTest, RejectsBadFactors) {
  const datagen::IntersectionData data = datagen::GenerateIntersection();
  core::TableauRequest request;
  auto scan = core::MultiResolutionScan(data.counts, request, {0});
  EXPECT_FALSE(scan.ok());
}

TEST(MultiResolutionTest, SkipsOverlyCoarseFactors) {
  auto counts = series::CountSequence::Create({1, 1, 1, 1}, {1, 1, 1, 1});
  ASSERT_TRUE(counts.ok());
  core::TableauRequest request;
  request.type = core::TableauType::kHold;
  request.c_hat = 0.5;
  auto scan = core::MultiResolutionScan(*counts, request, {1, 2, 3, 100});
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 2u);  // factors 1 and 2; 3 and 100 > n/2
}

TEST(MultiWindowMonitorTest, TracksAllWindows) {
  stream::StreamOptions options;
  options.alert_threshold = 0.5;
  options.clear_threshold = 0.6;
  stream::MultiWindowMonitor monitor(options, {8, 32});
  ASSERT_EQ(monitor.num_windows(), 2u);

  // Healthy prefix, then a dead zone long enough for the short window only.
  for (int t = 0; t < 64; ++t) monitor.Observe(5.0, 5.0);
  for (int t = 0; t < 10; ++t) monitor.Observe(0.0, 5.0);
  const auto confidences = monitor.WindowConfidences();
  ASSERT_EQ(confidences.size(), 2u);
  ASSERT_TRUE(confidences[0].has_value());
  ASSERT_TRUE(confidences[1].has_value());
  // The 8-tick window is fully inside the dead zone: confidence ~0; the
  // 32-tick window still carries healthy mass.
  EXPECT_LT(*confidences[0], 0.1);
  EXPECT_GT(*confidences[1], *confidences[0]);

  const auto worst = monitor.Worst();
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(worst->window, 8);
  EXPECT_TRUE(monitor.AnyViolation());

  // Recover (drain the backlog legally: outbound catches up).
  for (int t = 0; t < 25; ++t) monitor.Observe(7.0, 5.0);
  for (int t = 0; t < 40; ++t) monitor.Observe(5.0, 5.0);
  monitor.Flush();
  const auto episodes = monitor.AllEpisodes();
  ASSERT_GE(episodes.size(), 1u);
  bool has_short_window_episode = false;
  for (const auto& scoped : episodes) {
    if (scoped.window == 8) has_short_window_episode = true;
  }
  EXPECT_TRUE(has_short_window_episode);
}

TEST(MultiWindowMonitorTest, RejectsDuplicateWindows) {
  stream::StreamOptions options;
  EXPECT_DEATH(stream::MultiWindowMonitor(options, {8, 8}), "insert");
}

TEST(MultiWindowMonitorTest, ObserveBatchMatchesPerTickObserve) {
  stream::StreamOptions options;
  options.alert_threshold = 0.5;
  options.clear_threshold = 0.6;

  // The same traffic — healthy, dead zone, recovery — fed tick-by-tick and
  // as parallel batches must leave both monitors in the same state.
  std::vector<double> out_a;
  std::vector<double> in_b;
  for (int t = 0; t < 64; ++t) { out_a.push_back(5.0); in_b.push_back(5.0); }
  for (int t = 0; t < 10; ++t) { out_a.push_back(0.0); in_b.push_back(5.0); }
  for (int t = 0; t < 25; ++t) { out_a.push_back(7.0); in_b.push_back(5.0); }

  stream::MultiWindowMonitor sequential(options, {8, 32});
  for (size_t t = 0; t < out_a.size(); ++t) {
    sequential.Observe(out_a[t], in_b[t]);
  }
  stream::MultiWindowMonitor batched(options, {8, 32}, /*num_threads=*/2);
  const size_t half = out_a.size() / 2;
  batched.ObserveBatch({out_a.begin(), out_a.begin() + half},
                       {in_b.begin(), in_b.begin() + half});
  batched.ObserveBatch({out_a.begin() + half, out_a.end()},
                       {in_b.begin() + half, in_b.end()});

  EXPECT_EQ(batched.ticks(), sequential.ticks());
  const auto seq_conf = sequential.WindowConfidences();
  const auto bat_conf = batched.WindowConfidences();
  ASSERT_EQ(bat_conf.size(), seq_conf.size());
  for (size_t w = 0; w < seq_conf.size(); ++w) {
    ASSERT_EQ(bat_conf[w].has_value(), seq_conf[w].has_value()) << w;
    if (seq_conf[w].has_value()) {
      EXPECT_DOUBLE_EQ(*bat_conf[w], *seq_conf[w]) << w;
    }
  }
  sequential.Flush();
  batched.Flush();
  EXPECT_EQ(batched.AllEpisodes().size(), sequential.AllEpisodes().size());
}

}  // namespace
}  // namespace conservation
