#include <gtest/gtest.h>

#include "core/diagnose.h"
#include "datagen/perturb.h"
#include "datagen/router.h"

namespace conservation::core {
namespace {

class DiagnoseTest : public ::testing::Test {
 protected:
  DiagnoseTest() : base_(datagen::GenerateWellBehavedTraffic(906)) {}

  series::CountSequence Perturb(bool compensate,
                                datagen::PerturbationInfo* info) {
    datagen::PerturbationSpec spec;
    spec.fraction = 0.15;
    spec.compensate = compensate;
    spec.latest_start_fraction = 0.4;
    return datagen::ApplyPerturbation(base_, spec, info);
  }

  series::CountSequence base_;
};

TEST_F(DiagnoseTest, DelayedOutageIsClassifiedAsDelay) {
  datagen::PerturbationInfo info;
  const series::CountSequence delayed = Perturb(/*compensate=*/true, &info);
  const series::CumulativeSeries cumulative(delayed);

  const ViolationDiagnosis diagnosis = DiagnoseViolation(
      cumulative, {info.drop_begin, info.drop_end});
  EXPECT_EQ(diagnosis.kind, ViolationKind::kDelay);
  EXPECT_GT(diagnosis.missing_mass, 0.0);
  EXPECT_GT(diagnosis.recovered_fraction, 0.9);
  // Recovery is detected at (or just after) the compensation tick.
  EXPECT_GE(diagnosis.recovery_tick, info.recovery_tick - 1);
  EXPECT_LE(diagnosis.recovery_tick, info.recovery_tick + 5);
}

TEST_F(DiagnoseTest, LossIsClassifiedAsLoss) {
  datagen::PerturbationInfo info;
  const series::CountSequence lost = Perturb(/*compensate=*/false, &info);
  const series::CumulativeSeries cumulative(lost);

  const ViolationDiagnosis diagnosis = DiagnoseViolation(
      cumulative, {info.drop_begin, info.drop_end});
  EXPECT_EQ(diagnosis.kind, ViolationKind::kLoss);
  EXPECT_EQ(diagnosis.recovery_tick, 0);
  EXPECT_LT(diagnosis.recovered_fraction, 0.25);
  // The missing mass matches what the perturbation removed (up to the
  // background forwarding jitter of the trace).
  EXPECT_NEAR(diagnosis.missing_mass, info.amount_removed,
              0.05 * info.amount_removed);
}

TEST_F(DiagnoseTest, PartialRecoveryIsOngoing) {
  // Hand-built: lose 100, recover 50 later.
  std::vector<double> a(40, 10.0);
  std::vector<double> b(40, 10.0);
  for (int t = 10; t < 20; ++t) a[static_cast<size_t>(t)] = 0.0;  // -100
  a[30] = 60.0;  // +50 back
  auto counts = series::CountSequence::Create(a, b);
  ASSERT_TRUE(counts.ok());
  const series::CumulativeSeries cumulative(*counts);

  const ViolationDiagnosis diagnosis =
      DiagnoseViolation(cumulative, {11, 20});
  EXPECT_EQ(diagnosis.kind, ViolationKind::kOngoing);
  EXPECT_NEAR(diagnosis.missing_mass, 100.0, 1e-9);
  EXPECT_NEAR(diagnosis.recovered_fraction, 0.5, 1e-9);
  EXPECT_EQ(diagnosis.recovery_tick, 0);  // never within 10% of baseline
}

TEST_F(DiagnoseTest, ZeroMissingMassIsTrivialDelay) {
  auto counts = series::CountSequence::Create({5, 5, 5}, {5, 5, 5});
  ASSERT_TRUE(counts.ok());
  const series::CumulativeSeries cumulative(*counts);
  const ViolationDiagnosis diagnosis = DiagnoseViolation(cumulative, {2, 3});
  EXPECT_EQ(diagnosis.kind, ViolationKind::kDelay);
  EXPECT_DOUBLE_EQ(diagnosis.recovered_fraction, 1.0);
  EXPECT_EQ(diagnosis.recovery_tick, 3);
}

TEST_F(DiagnoseTest, DiagnoseTableauClassifiesEveryRow) {
  datagen::PerturbationInfo info;
  const series::CountSequence delayed = Perturb(/*compensate=*/true, &info);
  auto rule = ConservationRule::Create(delayed);
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  request.type = TableauType::kFail;
  request.c_hat = 0.1;
  request.s_hat = 0.02;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  ASSERT_GE(tableau->size(), 1u);

  const auto diagnoses = DiagnoseTableau(*rule, *tableau);
  ASSERT_EQ(diagnoses.size(), tableau->size());
  // The interval overlapping the drop is classified as delay (the mass
  // comes back at the recovery tick).
  bool found_delay_over_drop = false;
  for (const ViolationDiagnosis& diagnosis : diagnoses) {
    if (diagnosis.interval.Overlaps({info.drop_begin, info.drop_end}) &&
        diagnosis.kind == ViolationKind::kDelay) {
      found_delay_over_drop = true;
    }
    EXPECT_FALSE(diagnosis.ToString().empty());
  }
  EXPECT_TRUE(found_delay_over_drop);
}

TEST_F(DiagnoseTest, KindNames) {
  EXPECT_STREQ(ViolationKindName(ViolationKind::kDelay), "delay");
  EXPECT_STREQ(ViolationKindName(ViolationKind::kLoss), "loss");
  EXPECT_STREQ(ViolationKindName(ViolationKind::kOngoing), "ongoing");
}

}  // namespace
}  // namespace conservation::core
