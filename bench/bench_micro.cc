// google-benchmark microbenchmarks of the library's building blocks, plus
// ablations of the design choices called out in DESIGN.md §4:
//   * cumulative preprocessing and O(1) confidence evaluation;
//   * candidate generation across algorithms;
//   * Delta mode (min positive count vs 1) — affects AB's level count;
//   * largest-first early exit;
//   * greedy partial set cover.

#include <benchmark/benchmark.h>

#include "core/confidence.h"
#include "cover/partial_set_cover.h"
#include "datagen/job_log.h"
#include "interval/generator.h"
#include "series/cumulative.h"
#include "stream/streaming_monitor.h"
#include "util/random.h"

namespace {

using namespace conservation;

const series::CountSequence& JobCounts(int64_t n) {
  static auto* cache = new std::map<int64_t, series::CountSequence>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    datagen::JobLogParams params;
    params.num_ticks = n;
    it = cache->emplace(n, datagen::GenerateJobLog(params).counts).first;
  }
  return it->second;
}

void BM_CumulativeBuild(benchmark::State& state) {
  const series::CountSequence& counts = JobCounts(state.range(0));
  for (auto _ : state) {
    series::CumulativeSeries cumulative(counts);
    benchmark::DoNotOptimize(cumulative.TotalDelay());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CumulativeBuild)->Arg(10000)->Arg(100000);

void BM_ConfidenceQuery(benchmark::State& state) {
  const series::CountSequence& counts = JobCounts(100000);
  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kCredit);
  util::Rng rng(7);
  int64_t i = 1;
  int64_t j = 50000;
  for (auto _ : state) {
    i = (i * 48271) % 99991 + 1;
    j = i + (j * 16807) % (100000 - i) ;
    benchmark::DoNotOptimize(eval.Confidence(i, j));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConfidenceQuery);

void GeneratorBench(benchmark::State& state, interval::AlgorithmKind kind,
                    core::TableauType type, double c_hat,
                    interval::DeltaMode delta_mode, bool early_exit) {
  const series::CountSequence& counts = JobCounts(state.range(0));
  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  interval::GeneratorOptions options;
  options.type = type;
  options.c_hat = c_hat;
  options.epsilon = 0.01;
  options.delta_mode = delta_mode;
  options.largest_first_early_exit = early_exit;
  const auto generator = interval::MakeGenerator(kind);
  interval::GeneratorStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator->Generate(eval, options, &stats));
  }
  state.counters["tests"] = static_cast<double>(stats.intervals_tested);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GenerateHold_AB(benchmark::State& state) {
  GeneratorBench(state, interval::AlgorithmKind::kAreaBased,
                 core::TableauType::kHold, 0.999,
                 interval::DeltaMode::kMinPositiveCount, false);
}
BENCHMARK(BM_GenerateHold_AB)->Arg(20000)->Arg(50000);

void BM_GenerateHold_NAB(benchmark::State& state) {
  GeneratorBench(state, interval::AlgorithmKind::kNonAreaBased,
                 core::TableauType::kHold, 0.999,
                 interval::DeltaMode::kMinPositiveCount, false);
}
BENCHMARK(BM_GenerateHold_NAB)->Arg(20000)->Arg(50000);

void BM_GenerateFail_NABOpt(benchmark::State& state) {
  GeneratorBench(state, interval::AlgorithmKind::kNonAreaBasedOpt,
                 core::TableauType::kFail, 0.1,
                 interval::DeltaMode::kMinPositiveCount, false);
}
BENCHMARK(BM_GenerateFail_NABOpt)->Arg(20000)->Arg(50000);

// Ablation: Delta = min positive count (theory) vs Delta = 1 (paper impl).
// With integer counts whose minimum positive value is 1 they coincide; the
// job data has min 1, so we scale counts by 1000 to expose the difference.
void BM_Ablation_DeltaMode(benchmark::State& state) {
  const series::CountSequence scaled = JobCounts(50000).Scaled(1000.0);
  const series::CumulativeSeries cumulative(scaled);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  interval::GeneratorOptions options;
  options.type = core::TableauType::kHold;
  options.c_hat = 0.999;
  options.epsilon = 0.01;
  options.delta_mode = state.range(0) == 0
                           ? interval::DeltaMode::kMinPositiveCount
                           : interval::DeltaMode::kOne;
  const auto generator =
      interval::MakeGenerator(interval::AlgorithmKind::kAreaBased);
  interval::GeneratorStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator->Generate(eval, options, &stats));
  }
  state.counters["tests"] = static_cast<double>(stats.intervals_tested);
  state.SetLabel(state.range(0) == 0 ? "delta=min_positive" : "delta=1");
}
BENCHMARK(BM_Ablation_DeltaMode)->Arg(0)->Arg(1);

// Ablation: largest-first early exit (§VI closing remark).
void BM_Ablation_EarlyExit(benchmark::State& state) {
  GeneratorBench(state, interval::AlgorithmKind::kNonAreaBasedOpt,
                 core::TableauType::kHold, 0.99,
                 interval::DeltaMode::kMinPositiveCount,
                 state.range(1) == 1);
}
BENCHMARK(BM_Ablation_EarlyExit)
    ->Args({50000, 0})
    ->Args({50000, 1});

void BM_StreamObserve(benchmark::State& state) {
  const series::CountSequence& counts = JobCounts(100000);
  stream::StreamOptions options;
  options.model = state.range(0) == 0 ? core::ConfidenceModel::kBalance
                                      : core::ConfidenceModel::kCredit;
  options.window = 256;
  for (auto _ : state) {
    stream::StreamingMonitor monitor(options);
    for (int64_t t = 1; t <= counts.n(); ++t) {
      monitor.Observe(counts.a(t), counts.b(t));
    }
    benchmark::DoNotOptimize(monitor.episodes().size());
  }
  state.SetItemsProcessed(state.iterations() * counts.n());
  state.SetLabel(options.model == core::ConfidenceModel::kBalance
                     ? "balance"
                     : "credit");
}
BENCHMARK(BM_StreamObserve)->Arg(0)->Arg(1);

void BM_GreedyPartialSetCover(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(17);
  std::vector<interval::Interval> candidates;
  for (int k = 0; k < 2000; ++k) {
    const int64_t begin = rng.UniformInt(1, n);
    candidates.push_back(
        interval::Interval{begin, std::min(n, begin + rng.UniformInt(1, 400))});
  }
  cover::CoverOptions options;
  options.s_hat = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cover::GreedyPartialSetCover(candidates, n, options));
  }
}
BENCHMARK(BM_GreedyPartialSetCover)->Arg(20000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
