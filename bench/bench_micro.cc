// google-benchmark microbenchmarks of the library's building blocks, plus
// ablations of the design choices called out in DESIGN.md §4:
//   * cumulative preprocessing and O(1) confidence evaluation;
//   * candidate generation across algorithms;
//   * Delta mode (min positive count vs 1) — affects AB's level count;
//   * largest-first early exit;
//   * greedy partial set cover;
//   * batch SIMD kernels vs the forced-scalar backend.
//
// Kernel-record mode: --kernel_json=PATH skips google-benchmark and writes
// BenchJson records comparing the dispatched SIMD backend against the
// forced-scalar backend (identical arithmetic to a CONSERVATION_SIMD=off
// build) — per batch op and sweep width, plus end-to-end single-thread
// generator runs. The repo-root BENCH_kernel.json trajectory is generated
// this way; --quick=1 shrinks the sizes for the ctest smoke, and
// --repeats=R / --warmups=W override the best-of-R measurement counts
// (each record carries the counts it was measured with).
//
// Lane-occupancy record mode: --walks_json=PATH runs the AB-opt
// cross-anchor walk scheduler across walk widths (1 = scalar reference,
// fixed widths, 0 = auto) and records seconds plus the walks / rounds /
// lane-occupancy counters per width. --check_occupancy=X additionally
// gates auto-width occupancy > X on a SIMD backend (exit 1 below; the
// bench_smoke_walks ctest entry runs this at small n).
//
// Sketch-screen record mode: --sketch_json=PATH runs each generator on
// adversarial series families with the quantized-sketch anchor screen off
// and on (interval/prune.h), asserts the candidate sets are bit-identical,
// and records seconds + prune rate per (family, algorithm, mode) — plus
// the series/store.h per-tier resident-footprint records. The repo-root
// BENCH_sketch.json trajectory is generated this way; --quick=1 shrinks
// the sizes for the ctest smoke, and --check_speedup=X gates the
// high-prune family's best end-to-end speedup (and the cold tier's
// <= 2 B/tick budget).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "core/confidence.h"
#include "core/tableau.h"
#include "cover/partial_set_cover.h"
#include "datagen/job_log.h"
#include "incr/incremental.h"
#include "interval/generator.h"
#include "interval/kernel.h"
#include "interval/kernel_simd.h"
#include "interval/prune.h"
#include "series/cumulative.h"
#include "series/store.h"
#include "stream/streaming_monitor.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using namespace conservation;

const series::CountSequence& JobCounts(int64_t n) {
  static auto* cache = new std::map<int64_t, series::CountSequence>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    datagen::JobLogParams params;
    params.num_ticks = n;
    it = cache->emplace(n, datagen::GenerateJobLog(params).counts).first;
  }
  return it->second;
}

void BM_CumulativeBuild(benchmark::State& state) {
  const series::CountSequence& counts = JobCounts(state.range(0));
  for (auto _ : state) {
    series::CumulativeSeries cumulative(counts);
    benchmark::DoNotOptimize(cumulative.TotalDelay());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CumulativeBuild)->Arg(10000)->Arg(100000);

void BM_ConfidenceQuery(benchmark::State& state) {
  const series::CountSequence& counts = JobCounts(100000);
  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kCredit);
  util::Rng rng(7);
  int64_t i = 1;
  int64_t j = 50000;
  for (auto _ : state) {
    i = (i * 48271) % 99991 + 1;
    j = i + (j * 16807) % (100000 - i) ;
    benchmark::DoNotOptimize(eval.Confidence(i, j));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConfidenceQuery);

void GeneratorBench(benchmark::State& state, interval::AlgorithmKind kind,
                    core::TableauType type, double c_hat,
                    interval::DeltaMode delta_mode, bool early_exit) {
  const series::CountSequence& counts = JobCounts(state.range(0));
  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  interval::GeneratorOptions options;
  options.type = type;
  options.c_hat = c_hat;
  options.epsilon = 0.01;
  options.delta_mode = delta_mode;
  options.largest_first_early_exit = early_exit;
  const auto generator = interval::MakeGenerator(kind);
  interval::GeneratorStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator->Generate(eval, options, &stats));
  }
  state.counters["tests"] = static_cast<double>(stats.intervals_tested);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GenerateHold_AB(benchmark::State& state) {
  GeneratorBench(state, interval::AlgorithmKind::kAreaBased,
                 core::TableauType::kHold, 0.999,
                 interval::DeltaMode::kMinPositiveCount, false);
}
BENCHMARK(BM_GenerateHold_AB)->Arg(20000)->Arg(50000);

void BM_GenerateHold_NAB(benchmark::State& state) {
  GeneratorBench(state, interval::AlgorithmKind::kNonAreaBased,
                 core::TableauType::kHold, 0.999,
                 interval::DeltaMode::kMinPositiveCount, false);
}
BENCHMARK(BM_GenerateHold_NAB)->Arg(20000)->Arg(50000);

void BM_GenerateFail_NABOpt(benchmark::State& state) {
  GeneratorBench(state, interval::AlgorithmKind::kNonAreaBasedOpt,
                 core::TableauType::kFail, 0.1,
                 interval::DeltaMode::kMinPositiveCount, false);
}
BENCHMARK(BM_GenerateFail_NABOpt)->Arg(20000)->Arg(50000);

// Ablation: Delta = min positive count (theory) vs Delta = 1 (paper impl).
// With integer counts whose minimum positive value is 1 they coincide; the
// job data has min 1, so we scale counts by 1000 to expose the difference.
void BM_Ablation_DeltaMode(benchmark::State& state) {
  const series::CountSequence scaled = JobCounts(50000).Scaled(1000.0);
  const series::CumulativeSeries cumulative(scaled);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  interval::GeneratorOptions options;
  options.type = core::TableauType::kHold;
  options.c_hat = 0.999;
  options.epsilon = 0.01;
  options.delta_mode = state.range(0) == 0
                           ? interval::DeltaMode::kMinPositiveCount
                           : interval::DeltaMode::kOne;
  const auto generator =
      interval::MakeGenerator(interval::AlgorithmKind::kAreaBased);
  interval::GeneratorStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator->Generate(eval, options, &stats));
  }
  state.counters["tests"] = static_cast<double>(stats.intervals_tested);
  state.SetLabel(state.range(0) == 0 ? "delta=min_positive" : "delta=1");
}
BENCHMARK(BM_Ablation_DeltaMode)->Arg(0)->Arg(1);

// Ablation: largest-first early exit (§VI closing remark).
void BM_Ablation_EarlyExit(benchmark::State& state) {
  GeneratorBench(state, interval::AlgorithmKind::kNonAreaBasedOpt,
                 core::TableauType::kHold, 0.99,
                 interval::DeltaMode::kMinPositiveCount,
                 state.range(1) == 1);
}
BENCHMARK(BM_Ablation_EarlyExit)
    ->Args({50000, 0})
    ->Args({50000, 1});

void BM_StreamObserve(benchmark::State& state) {
  const series::CountSequence& counts = JobCounts(100000);
  stream::StreamOptions options;
  options.model = state.range(0) == 0 ? core::ConfidenceModel::kBalance
                                      : core::ConfidenceModel::kCredit;
  options.window = 256;
  for (auto _ : state) {
    stream::StreamingMonitor monitor(options);
    for (int64_t t = 1; t <= counts.n(); ++t) {
      monitor.Observe(counts.a(t), counts.b(t));
    }
    benchmark::DoNotOptimize(monitor.episodes().size());
  }
  state.SetItemsProcessed(state.iterations() * counts.n());
  state.SetLabel(options.model == core::ConfidenceModel::kBalance
                     ? "balance"
                     : "credit");
}
BENCHMARK(BM_StreamObserve)->Arg(0)->Arg(1);

// Contiguous batch-confidence sweep, dispatched backend vs forced scalar
// (range(1): 0 = scalar, 1 = dispatched). The JSON trajectory in
// BENCH_kernel.json is produced by the --kernel_json record mode below;
// this registered variant is the interactive view of the same sweep.
void BM_KernelConfidenceBatch(benchmark::State& state) {
  namespace ii = conservation::interval::internal;
  const int64_t width = state.range(0);
  const ii::SimdBackend backend = state.range(1) == 0
                                      ? ii::SimdBackend::kScalar
                                      : ii::ActiveSimdBackend();
  const int64_t n = 1 << 16;
  const series::CountSequence& counts = JobCounts(n);
  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  const ii::SimdBackend saved = ii::ActiveSimdBackend();
  ii::SetSimdBackendForTest(backend);
  ii::ConfidenceKernel kernel(eval, core::TableauType::kHold);
  ii::SetSimdBackendForTest(saved);
  kernel.BeginAnchor(1);
  std::vector<double> conf(static_cast<size_t>(width));
  std::vector<uint8_t> valid(static_cast<size_t>(width));
  int64_t j0 = 1;
  for (auto _ : state) {
    kernel.ConfidenceBatch(j0, j0 + width - 1, conf.data(), valid.data());
    benchmark::DoNotOptimize(conf[0]);
    j0 += width;
    if (j0 + width > n) j0 = 1;
  }
  state.SetItemsProcessed(state.iterations() * width);
  state.SetLabel(ii::SimdBackendName(backend));
}
BENCHMARK(BM_KernelConfidenceBatch)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

void BM_GreedyPartialSetCover(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(17);
  std::vector<interval::Interval> candidates;
  for (int k = 0; k < 2000; ++k) {
    const int64_t begin = rng.UniformInt(1, n);
    candidates.push_back(
        interval::Interval{begin, std::min(n, begin + rng.UniformInt(1, 400))});
  }
  cover::CoverOptions options;
  options.s_hat = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cover::GreedyPartialSetCover(candidates, n, options));
  }
}
BENCHMARK(BM_GreedyPartialSetCover)->Arg(20000)->Arg(100000);

// --- Kernel-record mode (--kernel_json=PATH) ------------------------------

namespace ii = conservation::interval::internal;

// Minimum of `trials` timed runs of body() after `warmups` untimed ones;
// min filters scheduler noise on shared machines better than the mean.
template <typename Body>
double TimeBest(int trials, int warmups, Body&& body) {
  for (int w = 0; w < warmups; ++w) body();
  double best = 0.0;
  for (int t = 0; t < trials; ++t) {
    util::Stopwatch timer;
    body();
    const double elapsed = timer.ElapsedSeconds();
    if (t == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct KernelBenchEnv {
  const series::CumulativeSeries& cumulative;
  const core::ConfidenceEvaluator eval;
  int64_t n;
  int64_t lanes_per_run;  // lane budget per timed measurement
  KernelBenchEnv(const series::CumulativeSeries& cum, int64_t n_,
                 int64_t lanes)
      : cumulative(cum),
        eval(&cumulative, core::ConfidenceModel::kBalance),
        n(n_),
        lanes_per_run(lanes) {}
};

// One micro record: run `op` (a per-batch callable taking the kernel and a
// batch ordinal) lanes_per_run/width times on the given backend.
template <typename Op>
double TimeKernelOp(const KernelBenchEnv& env, ii::SimdBackend backend,
                    int64_t width, int trials, int warmups, Op&& op) {
  const ii::SimdBackend saved = ii::ActiveSimdBackend();
  ii::SetSimdBackendForTest(backend);
  ii::ConfidenceKernel kernel(env.eval, core::TableauType::kHold);
  ii::SetSimdBackendForTest(saved);
  const int64_t reps = std::max<int64_t>(1, env.lanes_per_run / width);
  return TimeBest(trials, warmups, [&] {
    for (int64_t r = 0; r < reps; ++r) op(kernel, r);
  });
}

int RunKernelBench(int argc, char** argv, const std::string& json_path) {
  const bool quick = bench::IntFlag(argc, argv, "quick", 0) != 0;
  // Best-of-R measurement counts; each record carries the counts it was
  // measured with so trajectories stay comparable across overrides.
  const int micro_repeats =
      static_cast<int>(bench::IntFlag(argc, argv, "repeats", 3));
  const int gen_repeats = static_cast<int>(
      bench::IntFlag(argc, argv, "repeats", quick ? 1 : 5));
  const int warmups =
      static_cast<int>(bench::IntFlag(argc, argv, "warmups", 1));
  bench::BenchJson json("kernel", json_path);
  const ii::SimdBackend dispatched = ii::ActiveSimdBackend();
  std::printf("dispatched backend: %s\n", ii::SimdBackendName(dispatched));

  const int64_t n = 1 << 16;
  const series::CumulativeSeries cumulative(JobCounts(n));
  KernelBenchEnv env(cumulative, n, quick ? (1 << 18) : (1 << 22));

  std::vector<double> conf(4096);
  std::vector<uint8_t> valid(4096);
  std::vector<int64_t> indices(4096);

  struct Role {
    const char* name;
    ii::SimdBackend backend;
  };
  const Role roles[] = {{"scalar", ii::SimdBackend::kScalar},
                        {"dispatched", dispatched}};

  // Per-op, per-width micro sweeps. n(record) = sweep width; model carries
  // the role; the backend field records what actually ran.
  for (const int64_t width : {16L, 64L, 256L, 1024L, 4096L}) {
    double role_seconds[2] = {0.0, 0.0};
    for (int r = 0; r < 2; ++r) {
      const Role& role = roles[r];
      // BenchJson stamps each record's backend field from the active
      // backend; pin it to this role so the scalar rows don't carry the
      // dispatched backend's name.
      ii::SetSimdBackendForTest(role.backend);

      // Exhaustive-shaped contiguous confidence sweep over [i, n].
      double seconds = TimeKernelOp(
          env, role.backend, width, micro_repeats, warmups,
          [&](ii::ConfidenceKernel& k, int64_t rep) {
            const int64_t j0 = 1 + (rep * width) % (env.n - width);
            if (rep == 0) k.BeginAnchor(1);
            k.ConfidenceBatch(j0, j0 + width - 1, conf.data(), valid.data());
          });
      json.Add(width, "confidence_batch", role.name, 1, seconds,
               static_cast<uint64_t>(width));
      json.AnnotateTrials(micro_repeats, warmups);
      role_seconds[r] = seconds;

      // AB-opt-shaped index-list probe (strided breakpoints).
      for (int64_t k = 0; k < width; ++k) {
        indices[static_cast<size_t>(k)] =
            1 + (k * 7) % (env.n - 1);
      }
      std::sort(indices.begin(), indices.begin() + width);
      seconds = TimeKernelOp(
          env, role.backend, width, micro_repeats, warmups,
          [&](ii::ConfidenceKernel& k, int64_t rep) {
            if (rep == 0) k.BeginAnchor(1);
            k.ConfidenceIndexBatch(indices.data(), width, conf.data(),
                                   valid.data());
          });
      json.Add(width, "confidence_index_batch", role.name, 1, seconds,
               static_cast<uint64_t>(width));
      json.AnnotateTrials(micro_repeats, warmups);

      // AB-shaped sparsification-area walk window.
      seconds = TimeKernelOp(
          env, role.backend, width, micro_repeats, warmups,
          [&](ii::ConfidenceKernel& k, int64_t rep) {
            const int64_t j0 = 1 + (rep * width) % (env.n - width);
            if (rep == 0) k.BeginAnchor(1);
            k.SparseAreaBatch(j0, j0 + width - 1, conf.data());
          });
      json.Add(width, "sparse_area_batch", role.name, 1, seconds,
               static_cast<uint64_t>(width));
      json.AnnotateTrials(micro_repeats, warmups);

      // NAB-shaped right-anchored probe.
      seconds = TimeKernelOp(
          env, role.backend, width, micro_repeats, warmups,
          [&](ii::ConfidenceKernel& k, int64_t rep) {
            if (rep == 0) k.BeginRightAnchor(env.n);
            k.ConfidenceFromBatch(indices.data(), width, conf.data(),
                                  valid.data());
          });
      json.Add(width, "confidence_from_batch", role.name, 1, seconds,
               static_cast<uint64_t>(width));
      json.AnnotateTrials(micro_repeats, warmups);
    }
    ii::SetSimdBackendForTest(dispatched);
    std::printf("confidence_batch width=%5lld: scalar %.4fs dispatched %.4fs"
                " speedup %.2fx\n",
                static_cast<long long>(width), role_seconds[0],
                role_seconds[1], role_seconds[0] / role_seconds[1]);
  }

  // End-to-end single-thread generator runs, dispatched vs scalar. The
  // exhaustive and AB-opt rows are the acceptance-tracked endpoint sweeps.
  struct GenCase {
    const char* name;
    interval::AlgorithmKind kind;
    int64_t n;
    double epsilon;
  };
  const GenCase cases[] = {
      {"exhaustive", interval::AlgorithmKind::kExhaustive,
       quick ? 800 : 6000, 0.01},
      {"ab", interval::AlgorithmKind::kAreaBased, quick ? 20000 : 200000,
       0.01},
      {"ab_opt", interval::AlgorithmKind::kAreaBasedOpt,
       quick ? 20000 : 200000, 0.01},
      {"nab", interval::AlgorithmKind::kNonAreaBased, quick ? 20000 : 200000,
       0.01},
  };
  for (const GenCase& gen_case : cases) {
    const series::CumulativeSeries gen_cumulative(JobCounts(gen_case.n));
    const core::ConfidenceEvaluator gen_eval(&gen_cumulative,
                                             core::ConfidenceModel::kBalance);
    interval::GeneratorOptions options;
    options.type = core::TableauType::kHold;
    options.c_hat = 0.999;
    options.epsilon = gen_case.epsilon;
    options.num_threads = 1;
    const auto generator = interval::MakeGenerator(gen_case.kind);
    // Role-interleaved repeats: run scalar and dispatched back to back
    // inside every repeat instead of as sequential blocks, so the reported
    // ratio compares runs seconds apart. Shared/virtualized machines drift
    // by double-digit percentages over a multi-minute blocked schedule,
    // which is larger than the effect being measured.
    double role_seconds[2] = {0.0, 0.0};
    uint64_t tested = 0;
    for (int rep = -warmups; rep < gen_repeats; ++rep) {
      for (int r = 0; r < 2; ++r) {
        ii::SetSimdBackendForTest(roles[r].backend);
        interval::GeneratorStats stats;
        stats.Reset();
        util::Stopwatch timer;
        generator->Generate(gen_eval, options, &stats);
        const double seconds = timer.ElapsedSeconds();
        if (rep < 0) continue;  // warmup
        if (role_seconds[r] == 0.0 || seconds < role_seconds[r]) {
          role_seconds[r] = seconds;
        }
        tested = stats.intervals_tested;
      }
    }
    for (int r = 0; r < 2; ++r) {
      json.Add(gen_case.n, gen_case.name, roles[r].name, 1, role_seconds[r],
               tested);
      json.AnnotateTrials(gen_repeats, warmups);
    }
    ii::SetSimdBackendForTest(dispatched);
    std::printf("%-10s n=%7lld tested=%llu: scalar %.4fs dispatched %.4fs "
                "speedup %.2fx\n",
                gen_case.name, static_cast<long long>(gen_case.n),
                static_cast<unsigned long long>(tested), role_seconds[0],
                role_seconds[1], role_seconds[0] / role_seconds[1]);
  }

  json.Flush();
  return 0;
}

// --- Lane-occupancy record mode (--walks_json=PATH) -----------------------
//
// Runs the AB-opt cross-anchor walk scheduler single-threaded across walk
// widths and records wall clock plus the walks / rounds / lane counters.
// Width 1 is the scalar-walk reference; the remaining rows show how lane
// occupancy holds up as the scheduler widens, and the auto row (width 0)
// is the production configuration. --check_occupancy=X turns the auto row
// into a gate: occupancy must exceed X when a SIMD backend dispatched
// (scalar dispatch has no lanes to fill and skips the gate).
int RunWalksBench(int argc, char** argv, const std::string& json_path) {
  const bool quick = bench::IntFlag(argc, argv, "quick", 0) != 0;
  const int repeats = static_cast<int>(
      bench::IntFlag(argc, argv, "repeats", quick ? 1 : 3));
  const int warmups = static_cast<int>(
      bench::IntFlag(argc, argv, "warmups", quick ? 0 : 1));
  const double check_occupancy =
      bench::DoubleFlag(argc, argv, "check_occupancy", 0.0);
  bench::BenchJson json("walks", json_path);
  const ii::SimdBackend dispatched = ii::ActiveSimdBackend();
  std::printf("dispatched backend: %s\n", ii::SimdBackendName(dispatched));

  const int64_t n = bench::IntFlag(argc, argv, "n", quick ? 20000 : 200000);
  const series::CumulativeSeries cumulative(JobCounts(n));
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  const auto generator =
      interval::MakeGenerator(interval::AlgorithmKind::kAreaBasedOpt);

  bool gate_failed = false;
  for (const int width : {1, 8, 64, 0}) {
    interval::GeneratorOptions options;
    options.type = core::TableauType::kHold;
    options.c_hat = 0.999;
    options.epsilon = 0.01;
    options.num_threads = 1;
    options.walk_width = width;
    interval::GeneratorStats stats;
    const double seconds = TimeBest(repeats, warmups, [&] {
      stats.Reset();
      generator->Generate(eval, options, &stats);
    });
    json.AddWalks(n, "ab_opt", width == 0 ? "auto" : "fixed", 1, seconds,
                  width, stats);
    json.AnnotateTrials(repeats, warmups);
    std::printf("walk_width=%4s: %.4fs walks=%llu rounds=%llu "
                "occupancy=%.3f\n",
                width == 0 ? "auto" : std::to_string(width).c_str(), seconds,
                static_cast<unsigned long long>(stats.walks),
                static_cast<unsigned long long>(stats.walk_rounds),
                stats.LaneOccupancy());
    if (width == 0 && check_occupancy > 0.0) {
      if (dispatched == ii::SimdBackend::kScalar) {
        std::printf("occupancy gate skipped: scalar backend dispatched\n");
      } else if (stats.LaneOccupancy() <= check_occupancy) {
        std::fprintf(stderr,
                     "FAIL: auto-width lane occupancy %.3f <= %.3f\n",
                     stats.LaneOccupancy(), check_occupancy);
        gate_failed = true;
      } else {
        std::printf("occupancy gate passed: %.3f > %.3f\n",
                    stats.LaneOccupancy(), check_occupancy);
      }
    }
  }

  json.Flush();
  return gate_failed ? 1 : 0;
}

// --- Sketch-screen record mode (--sketch_json=PATH) -----------------------
//
// Three series families spanning the screen's effectiveness range:
//   low_conf_hold - fat inbound stream, a few isolated outbound spikes:
//                   hold confidence is tiny everywhere and a high c_hat
//                   prunes (nearly) every anchor. The acceptance-tracked
//                   high-prune-rate family.
//   uniform_pass  - a == b: confidence is 1 everywhere, nothing can be
//                   pruned; measures the screen's overhead ceiling.
//   joblog        - the stock job-log workload: moderate prune rates.
series::CountSequence SketchFamily(const std::string& family, int64_t n) {
  if (family == "joblog") return JobCounts(n);
  std::vector<double> a(static_cast<size_t>(n), 0.0);
  std::vector<double> b(static_cast<size_t>(n), 0.0);
  util::Rng rng(41);
  if (family == "low_conf_hold") {
    for (int64_t t = 0; t < n; ++t) {
      b[static_cast<size_t>(t)] = 2.0 + static_cast<double>(rng.Poisson(6.0));
      if (t % 97 == 13) a[static_cast<size_t>(t)] = 1.0;
    }
  } else {  // uniform_pass
    for (int64_t t = 0; t < n; ++t) {
      const double v = 1.0 + static_cast<double>(rng.Poisson(3.0));
      a[static_cast<size_t>(t)] = v;
      b[static_cast<size_t>(t)] = v;
    }
  }
  auto counts = series::CountSequence::Create(std::move(a), std::move(b));
  CR_CHECK(counts.ok());
  return std::move(counts).value();
}

int RunSketchBench(int argc, char** argv, const std::string& json_path) {
  const bool quick = bench::IntFlag(argc, argv, "quick", 0) != 0;
  const int repeats = static_cast<int>(
      bench::IntFlag(argc, argv, "repeats", quick ? 1 : 3));
  const int warmups = static_cast<int>(
      bench::IntFlag(argc, argv, "warmups", quick ? 0 : 1));
  const double check_speedup =
      bench::DoubleFlag(argc, argv, "check_speedup", 0.0);
  const int64_t sketch_block = bench::IntFlag(argc, argv, "sketch_block", 256);
  bench::BenchJson json("sketch", json_path);
  std::printf("dispatched backend: %s\n",
              ii::SimdBackendName(ii::ActiveSimdBackend()));

  const int64_t n = bench::IntFlag(argc, argv, "n", quick ? 20000 : 200000);
  const int64_t n_exhaustive = quick ? 2000 : 20000;

  struct Algo {
    const char* name;
    interval::AlgorithmKind kind;
  };
  const Algo algos[] = {
      {"exhaustive", interval::AlgorithmKind::kExhaustive},
      {"ab", interval::AlgorithmKind::kAreaBased},
      {"ab_opt", interval::AlgorithmKind::kAreaBasedOpt},
      {"nab", interval::AlgorithmKind::kNonAreaBased},
  };
  double best_high_prune_speedup = 0.0;
  bool gate_failed = false;
  for (const std::string family :
       {"low_conf_hold", "uniform_pass", "joblog"}) {
    for (const Algo& algo : algos) {
      const int64_t algo_n =
          algo.kind == interval::AlgorithmKind::kExhaustive ? n_exhaustive : n;
      const series::CumulativeSeries cumulative(SketchFamily(family, algo_n));
      const core::ConfidenceEvaluator eval(&cumulative,
                                           core::ConfidenceModel::kBalance);
      const auto generator = interval::MakeGenerator(algo.kind);
      interval::GeneratorOptions options;
      options.type = core::TableauType::kHold;
      options.c_hat = 0.9;
      options.epsilon = 0.01;
      options.num_threads = 1;
      options.sketch_block = sketch_block;

      // Mode-interleaved best-of-R (see RunKernelBench on why interleaving
      // beats blocked scheduling on shared machines), with the candidate
      // bit-identity contract asserted on every timed pair.
      double mode_seconds[2] = {0.0, 0.0};  // [0] = off, [1] = auto
      interval::GeneratorStats auto_stats;
      for (int rep = -warmups; rep < repeats; ++rep) {
        std::vector<interval::Candidate> outputs[2];
        for (int m = 0; m < 2; ++m) {
          options.sketch = m == 0 ? interval::SketchMode::kOff
                                  : interval::SketchMode::kAuto;
          interval::GeneratorStats stats;
          util::Stopwatch timer;
          outputs[m] = generator->GenerateCandidates(eval, options, &stats);
          const double seconds = timer.ElapsedSeconds();
          if (rep >= 0 &&
              (mode_seconds[m] == 0.0 || seconds < mode_seconds[m])) {
            mode_seconds[m] = seconds;
          }
          if (m == 1) auto_stats = stats;
        }
        CR_CHECK(outputs[0].size() == outputs[1].size());
        for (size_t k = 0; k < outputs[0].size(); ++k) {
          CR_CHECK(outputs[0][k].interval == outputs[1][k].interval);
          CR_CHECK(outputs[0][k].confidence == outputs[1][k].confidence);
        }
      }
      const double speedup = mode_seconds[1] > 0.0
                                 ? mode_seconds[0] / mode_seconds[1]
                                 : 0.0;
      interval::GeneratorStats off_stats;
      json.AddSketch(algo_n, algo.name, family, 1, mode_seconds[0], "off",
                     sketch_block, 0.0, off_stats);
      json.AnnotateTrials(repeats, warmups);
      json.AddSketch(algo_n, algo.name, family, 1, mode_seconds[1], "auto",
                     sketch_block, speedup, auto_stats);
      json.AnnotateTrials(repeats, warmups);
      const double prune_rate =
          static_cast<double>(auto_stats.anchors_pruned) /
          static_cast<double>(algo_n);
      std::printf("%-14s %-10s n=%7lld prune=%5.3f off %.4fs auto %.4fs "
                  "speedup %.2fx\n",
                  family.c_str(), algo.name,
                  static_cast<long long>(algo_n), prune_rate,
                  mode_seconds[0], mode_seconds[1], speedup);
      if (family == "low_conf_hold") {
        best_high_prune_speedup =
            std::max(best_high_prune_speedup, speedup);
      }
    }
  }

  // Store tier footprints (series/store.h): estimated resident bytes per
  // tick at each tier, with the cold tier gated at <= 2 B/tick.
  {
    const series::CumulativeSeries cumulative(SketchFamily("joblog", n));
    series::SeriesStore store =
        series::SeriesStore::Build(cumulative, sketch_block);
    const auto per_tick = [&](size_t bytes) {
      return static_cast<double>(bytes) / static_cast<double>(n);
    };
    const double full_bpt = per_tick(store.ResidentBytesEstimate());
    store.Evict(series::SeriesStore::Tier::kSketch);
    const double sketch_bpt = per_tick(store.ResidentBytesEstimate());
    store.Evict(series::SeriesStore::Tier::kCold);
    const double cold_bpt = per_tick(store.ResidentBytesEstimate());
    json.AddStoreFootprint(n, "full", sketch_block, full_bpt);
    json.AddStoreFootprint(n, "sketch", sketch_block, sketch_bpt);
    json.AddStoreFootprint(n, "cold", sketch_block, cold_bpt);
    std::printf("store tiers (B/tick): full %.2f sketch %.2f cold %.2f\n",
                full_bpt, sketch_bpt, cold_bpt);
    if (cold_bpt > 2.0) {
      std::fprintf(stderr, "FAIL: cold tier %.2f B/tick > 2.0 budget\n",
                   cold_bpt);
      gate_failed = true;
    }
  }

  // Auto-gate boundary assertion (--check_gate_overhead=F): at the smallest
  // series the auto gate admits (n = kSketchAutoGateBlocks * sketch_block,
  // see interval/prune.h for the sweep that fixed the constant), the screen
  // must not slow generation down by more than fraction F on either the
  // unprunable overhead-ceiling family (uniform_pass) or the prunable one
  // (low_conf_hold, where it is expected to win outright). Guards the gate
  // constant against overhead regressions in the screen's setup path.
  const double check_gate_overhead =
      bench::DoubleFlag(argc, argv, "check_gate_overhead", 0.0);
  if (check_gate_overhead > 0.0) {
    const int64_t n_gate = ii::kSketchAutoGateBlocks * sketch_block;
    const int gate_repeats = std::max(repeats, 5);
    for (const std::string family : {"low_conf_hold", "uniform_pass"}) {
      const series::CumulativeSeries cumulative(SketchFamily(family, n_gate));
      const core::ConfidenceEvaluator eval(&cumulative,
                                           core::ConfidenceModel::kBalance);
      const auto generator =
          interval::MakeGenerator(interval::AlgorithmKind::kAreaBasedOpt);
      interval::GeneratorOptions options;
      options.type = core::TableauType::kHold;
      options.c_hat = 0.9;
      options.epsilon = 0.01;
      options.num_threads = 1;
      options.sketch_block = sketch_block;
      double mode_seconds[2] = {0.0, 0.0};  // [0] = off, [1] = auto
      for (int rep = -warmups; rep < gate_repeats; ++rep) {
        for (int m = 0; m < 2; ++m) {
          options.sketch = m == 0 ? interval::SketchMode::kOff
                                  : interval::SketchMode::kAuto;
          interval::GeneratorStats stats;
          util::Stopwatch timer;
          auto out = generator->GenerateCandidates(eval, options, &stats);
          const double seconds = timer.ElapsedSeconds();
          benchmark::DoNotOptimize(out);
          if (rep >= 0 &&
              (mode_seconds[m] == 0.0 || seconds < mode_seconds[m])) {
            mode_seconds[m] = seconds;
          }
        }
      }
      const double overhead = mode_seconds[0] > 0.0
                                  ? mode_seconds[1] / mode_seconds[0] - 1.0
                                  : 0.0;
      std::printf("gate boundary n=%lld %-14s off %.5fs auto %.5fs "
                  "overhead %+.1f%%\n",
                  static_cast<long long>(n_gate), family.c_str(),
                  mode_seconds[0], mode_seconds[1], overhead * 100.0);
      if (overhead > check_gate_overhead) {
        std::fprintf(stderr,
                     "FAIL: auto-gate boundary overhead %.1f%% > %.1f%% "
                     "budget on %s\n",
                     overhead * 100.0, check_gate_overhead * 100.0,
                     family.c_str());
        gate_failed = true;
      }
    }
  }

  if (check_speedup > 0.0) {
    if (best_high_prune_speedup >= check_speedup) {
      std::printf("speedup gate passed: %.2fx >= %.2fx on low_conf_hold\n",
                  best_high_prune_speedup, check_speedup);
    } else {
      std::fprintf(stderr,
                   "FAIL: best low_conf_hold speedup %.2fx < %.2fx\n",
                   best_high_prune_speedup, check_speedup);
      gate_failed = true;
    }
  }

  json.Flush();
  return gate_failed ? 1 : 0;
}

// --- Incremental-maintenance record mode (--incr_json=PATH) ---------------
//
// Amortized per-batch maintenance latency of incr::IncrementalDiscoverer
// against the from-scratch strategy (one full DiscoverTableau per arriving
// batch) on the job-log workload, at batch sizes {1, 64, 4096}. Only the
// steady-state tail of the stream is timed: the engine is warmed with a
// prefix of n - batches*batch ticks, then each of the remaining AppendBatch
// calls is timed individually and averaged. After the replay the maintained
// tableau is CR_CHECKed bit-identical to a fresh DiscoverTableau at n —
// the speedup rows are only meaningful under the exactness contract.
// --check_speedup=S fails the run when any (algorithm, batch) configuration
// amortizes worse than S x the from-scratch latency.
void CheckTableauIdentity(const core::Tableau& incremental,
                          const core::Tableau& fresh) {
  CR_CHECK(incremental.rows.size() == fresh.rows.size());
  for (size_t r = 0; r < fresh.rows.size(); ++r) {
    CR_CHECK(incremental.rows[r].interval == fresh.rows[r].interval);
    CR_CHECK(std::memcmp(&incremental.rows[r].confidence,
                         &fresh.rows[r].confidence, sizeof(double)) == 0);
  }
  CR_CHECK(incremental.covered == fresh.covered);
  CR_CHECK(incremental.required == fresh.required);
  CR_CHECK(incremental.support_satisfied == fresh.support_satisfied);
  CR_CHECK(incremental.num_candidates == fresh.num_candidates);
}

int RunIncrBench(int argc, char** argv, const std::string& json_path) {
  const bool quick = bench::IntFlag(argc, argv, "quick", 0) != 0;
  // The fresh baseline at full size runs for tens of seconds — long enough
  // to be stable without best-of-repeats, so the default is a single timed
  // run; the incremental side is already a mean over `measured` batches.
  const int repeats =
      static_cast<int>(bench::IntFlag(argc, argv, "repeats", 1));
  const int warmups =
      static_cast<int>(bench::IntFlag(argc, argv, "warmups", 0));
  const double check_speedup =
      bench::DoubleFlag(argc, argv, "check_speedup", 0.0);
  const int64_t n = bench::IntFlag(argc, argv, "n", quick ? 20000 : 1000000);
  const int64_t measured =
      bench::IntFlag(argc, argv, "measured_batches", quick ? 4 : 32);
  bench::BenchJson json("incr", json_path);
  std::printf("dispatched backend: %s\n",
              ii::SimdBackendName(ii::ActiveSimdBackend()));

  struct Algo {
    const char* name;
    interval::AlgorithmKind kind;
  };
  // Exhaustive is quadratic and excluded at these sizes; plain AB matches
  // AB-opt's incremental path closely enough that tracking both would
  // double the fresh-baseline cost for no extra signal.
  const Algo algos[] = {
      {"ab_opt", interval::AlgorithmKind::kAreaBasedOpt},
      {"nab", interval::AlgorithmKind::kNonAreaBased},
  };
  const int64_t batch_sizes[] = {1, 64, 4096};
  const series::CountSequence& counts = JobCounts(n);
  double worst_speedup = 0.0;
  bool have_speedup = false;
  bool gate_failed = false;
  for (const Algo& algo : algos) {
    core::TableauRequest request;
    request.type = core::TableauType::kHold;
    request.model = core::ConfidenceModel::kBalance;
    request.c_hat = 0.9;
    request.s_hat = 0.5;
    request.algorithm = algo.kind;
    request.epsilon = 0.01;
    request.num_threads = 1;

    // From-scratch baseline: what each arriving batch costs when the
    // strategy is "recompute the tableau over the full prefix".
    const series::CumulativeSeries cumulative(counts);
    const core::ConfidenceEvaluator eval(&cumulative, request.model);
    core::Tableau fresh_tableau;
    const double fresh_seconds = TimeBest(repeats, warmups, [&] {
      auto fresh = core::DiscoverTableau(eval, request);
      CR_CHECK(fresh.ok());
      fresh_tableau = std::move(fresh).value();
    });
    std::printf("%-7s n=%lld fresh full run %.4fs (%zu rows)\n", algo.name,
                static_cast<long long>(n), fresh_seconds,
                fresh_tableau.rows.size());
    json.AddIncr(n, algo.name, "joblog", "fresh", /*batch=*/0, /*batches=*/1,
                 fresh_seconds, /*speedup=*/0.0, 0, 0, 0, 0);
    json.AnnotateTrials(repeats, warmups);

    for (const int64_t batch : batch_sizes) {
      const int64_t initial_n = std::max<int64_t>(1, n - measured * batch);
      auto discoverer = incr::IncrementalDiscoverer::Create(
          counts.Prefix(initial_n), request);
      CR_CHECK(discoverer.ok());
      const std::vector<double>& a = counts.outbound();
      const std::vector<double>& b = counts.inbound();
      double total_seconds = 0.0;
      int64_t timed_batches = 0;
      int64_t at = initial_n;
      while (at < n) {
        const int64_t m = std::min<int64_t>(batch, n - at);
        util::Stopwatch timer;
        discoverer->AppendBatch(a.data() + at, b.data() + at, m);
        total_seconds += timer.ElapsedSeconds();
        at += m;
        ++timed_batches;
      }
      CheckTableauIdentity(discoverer->tableau(), fresh_tableau);
      const double mean_seconds = total_seconds /
                                  static_cast<double>(timed_batches);
      const double speedup =
          mean_seconds > 0.0 ? fresh_seconds / mean_seconds : 0.0;
      const incr::IncrStats& stats = discoverer->stats();
      std::printf("%-7s n=%lld batch=%5lld incr %.6fs/batch over %lld "
                  "batches speedup %8.1fx (identical)\n",
                  algo.name, static_cast<long long>(n),
                  static_cast<long long>(batch), mean_seconds,
                  static_cast<long long>(timed_batches), speedup);
      json.AddIncr(n, algo.name, "joblog", "incr", batch, timed_batches,
                   mean_seconds, speedup, stats.candidates_extended,
                   stats.cover_warm_pops, stats.full_rebuilds,
                   stats.dirty_anchors);
      if (!have_speedup || speedup < worst_speedup) worst_speedup = speedup;
      have_speedup = true;
    }
  }

  if (check_speedup > 0.0) {
    if (have_speedup && worst_speedup >= check_speedup) {
      std::printf("speedup gate passed: worst %.1fx >= %.1fx\n",
                  worst_speedup, check_speedup);
    } else {
      std::fprintf(stderr, "FAIL: worst amortized speedup %.1fx < %.1fx\n",
                   worst_speedup, check_speedup);
      gate_failed = true;
    }
  }

  json.Flush();
  return gate_failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel_json =
      conservation::bench::StringFlag(argc, argv, "kernel_json", "");
  if (!kernel_json.empty()) return RunKernelBench(argc, argv, kernel_json);
  const std::string walks_json =
      conservation::bench::StringFlag(argc, argv, "walks_json", "");
  if (!walks_json.empty()) return RunWalksBench(argc, argv, walks_json);
  const std::string sketch_json =
      conservation::bench::StringFlag(argc, argv, "sketch_json", "");
  if (!sketch_json.empty()) return RunSketchBench(argc, argv, sketch_json);
  const std::string incr_json =
      conservation::bench::StringFlag(argc, argv, "incr_json", "");
  if (!incr_json.empty()) return RunIncrBench(argc, argv, incr_json);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
