// Regenerates Figure 10 of the paper (§VI): AB-opt vs NAB-opt on the
// Job-Log data, fail intervals, as a function of eps (log scale in the
// paper).
//
// AB-opt removes AB's duplicate tests via per-anchor binary search, so its
// interval-test count drops to the same order as NAB-opt's — but each
// endpoint costs a log(n)-probe binary search, so its *runtime* stays an
// order of magnitude (or more) behind NAB-opt. That asymmetry is the
// paper's closing argument for the non-area-based family.

#include <cmath>

#include "bench/bench_util.h"
#include "datagen/job_log.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const int64_t n = bench::IntFlag(argc, argv, "n", 150000);
  const double c_hat = bench::DoubleFlag(argc, argv, "c_hat", 0.1);
  const double min_eps = bench::DoubleFlag(argc, argv, "min_eps", 0.01);

  datagen::JobLogParams params;
  params.num_ticks = n;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(params);
  const series::CumulativeSeries cumulative(jobs.counts);

  bench::PrintHeader(
      "Figure 10: AB-opt vs NAB-opt, fail intervals, eps sweep");
  std::printf("n = %lld\n\n", static_cast<long long>(n));
  io::TablePrinter table({"eps", "AB-opt tests", "AB-opt probes",
                          "NAB-opt tests", "AB-opt sec", "NAB-opt sec",
                          "time ratio"});

  for (double eps = 0.1; eps >= min_eps * 0.999; eps /= std::sqrt(10.0)) {
    interval::GeneratorOptions options;
    options.type = core::TableauType::kFail;
    options.c_hat = c_hat;
    options.epsilon = eps;
    options.delta_mode = interval::DeltaMode::kOne;

    const auto ab_opt = bench::RunGenerator(
        cumulative, core::ConfidenceModel::kBalance,
        interval::AlgorithmKind::kAreaBasedOpt, options);
    const auto nab_opt = bench::RunGenerator(
        cumulative, core::ConfidenceModel::kBalance,
        interval::AlgorithmKind::kNonAreaBasedOpt, options);

    table.AddRow(
        {util::StrFormat("%.4f", eps),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     ab_opt.stats.intervals_tested)),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     ab_opt.stats.endpoint_steps)),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     nab_opt.stats.intervals_tested)),
         util::StrFormat("%.3f", ab_opt.stats.seconds),
         util::StrFormat("%.3f", nab_opt.stats.seconds),
         util::StrFormat("%.2f",
                         ab_opt.stats.seconds /
                             std::max(nab_opt.stats.seconds, 1e-9))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reading: AB-opt's interval tests are comparable to "
              "NAB-opt's, but its binary-search probes dominate the "
              "runtime — NAB-opt wins by an order of magnitude.\n");
  return 0;
}
