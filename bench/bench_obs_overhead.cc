// Instrumentation-overhead guard for the obs subsystem.
//
// Runs the same generation + cover workload in three arms:
//   * untraced — tracing stopped, watchdog stopped, no serving;
//   * traced   — tracing recording at verbosity 1 (the crdiscover default);
//   * serving  — tracing on PLUS the full serving-grade surface: labeled
//     per-run histogram records, the watchdog armed, the scrape server live
//     on an ephemeral port with an aggressive window-advance cadence, and a
//     client thread scraping /metrics in a tight loop.
// Takes the median wall time of each arm and reports the relative overhead
// of the instrumented arms against the untraced baseline. The acceptance
// budget is <2% for both; with --check=1 the bench exits non-zero when
// either overhead exceeds --max_overhead_pct, so ctest can enforce the
// budget (the registered smoke uses a relaxed threshold — shared CI
// machines are noisy; run locally with the default for the real number).
//
// In a -DCONSERVATION_TRACING=OFF build the trace macros compile to nothing
// and the untraced/traced arms run identical code: that overhead is pure
// noise around zero, which doubles as the "compiled out costs nothing"
// check. The serving arm still exercises labels + windows + scrape, whose
// cost lives off the hot path by design.
//
//   bench_obs_overhead --n=200000 --reps=5 --check=1 --max_overhead_pct=2
//
// With --json=<path>, per-arm records (algorithm = "untraced" / "traced" /
// "serving") are written; the serving record carries the registry snapshot
// as its "metrics" block.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/job_log.h"
#include "obs/labels.h"
#include "obs/scrape.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "obs/window.h"
#include "util/string_util.h"

namespace {

using namespace conservation;

struct Workload {
  const series::CumulativeSeries* cumulative = nullptr;
  interval::GeneratorOptions options;
  int64_t n = 0;

  // One end-to-end pipeline pass: candidate generation (the instrumented
  // chunked driver) followed by the lazy-greedy cover (seed/select spans).
  size_t Run() const {
    const auto run = bench::RunGenerator(
        *cumulative, core::ConfidenceModel::kBalance,
        interval::AlgorithmKind::kAreaBased, options);
    cover::CoverOptions cover_options;
    cover_options.s_hat = 0.1;
    cover_options.num_threads = options.num_threads;
    const cover::CoverResult cover =
        cover::GreedyPartialSetCover(run.candidates, n, cover_options);
    return run.candidates.size() + static_cast<size_t>(cover.covered);
  }
};

double MedianSeconds(const Workload& workload, int64_t reps, size_t* checksum,
                     obs::Histogram* run_seconds) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int64_t r = 0; r < reps; ++r) {
    util::Stopwatch timer;
    *checksum += workload.Run();
    const double elapsed = timer.ElapsedSeconds();
    // The serving arm records each rep into a labeled histogram — the same
    // per-batch instrumentation crdiscover's replay loop performs.
    if (run_seconds != nullptr) run_seconds->Record(elapsed);
    seconds.push_back(elapsed);
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t n = bench::IntFlag(argc, argv, "n", 200000);
  const int64_t reps = bench::IntFlag(argc, argv, "reps", 5);
  const int64_t threads = bench::IntFlag(argc, argv, "threads", 2);
  const bool check = bench::IntFlag(argc, argv, "check", 0) != 0;
  const double max_overhead_pct =
      bench::DoubleFlag(argc, argv, "max_overhead_pct", 2.0);
  bench::BenchJson json =
      bench::BenchJson::FromArgs(argc, argv, "obs_overhead");

  bench::PrintHeader("obs overhead, generation + cover pipeline");
  datagen::JobLogParams params;
  params.num_ticks = n;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(params);
  const series::CumulativeSeries cumulative(jobs.counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);

  Workload workload;
  workload.cumulative = &cumulative;
  workload.n = n;
  workload.options.type = core::TableauType::kFail;
  workload.options.c_hat = std::max(0.0, *eval.Confidence(1, n) * 0.999);
  workload.options.epsilon = 0.01;
  workload.options.num_threads = static_cast<int>(threads);

  size_t checksum = 0;
  // Warm-up rep so thread-pool spin-up and page faults hit no arm.
  checksum += workload.Run();

  obs::StopTracing();
  const double untraced = MedianSeconds(workload, reps, &checksum, nullptr);
  json.Add(n, "untraced", "balance", static_cast<int>(threads), untraced,
           /*intervals_tested=*/0);

  obs::TraceOptions trace_options;
  trace_options.verbosity = 1;
  obs::StartTracing(trace_options);
  const double traced = MedianSeconds(workload, reps, &checksum, nullptr);
  obs::StopTracing();
  json.Add(n, "traced", "balance", static_cast<int>(threads), traced,
           /*intervals_tested=*/0);

  // Serving arm: everything the long-running daemon would have on at once.
  obs::StartTracing(trace_options);
  obs::WatchdogOptions watchdog_options;
  watchdog_options.default_budget_seconds = 3600.0;  // armed, never fires
  obs::StartWatchdog(watchdog_options);
  obs::Histogram& run_seconds =
      obs::LabeledHistogram("bench.obs_overhead.run_seconds",
                            {0.001, 0.01, 0.1, 1.0, 10.0})
          .With({{"tenant", "bench"}, {"generator", "area"}});
  obs::ScrapeServer server;
  obs::ScrapeServerOptions serve_options;  // port 0: ephemeral
  serve_options.window_advance_seconds = 0.05;
  std::string serve_error;
  std::thread scraper;
  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  const bool serving_up = server.Start(serve_options, &serve_error);
  if (serving_up) {
    scraper = std::thread([&server, &stop_scraper, &scrapes] {
      while (!stop_scraper.load(std::memory_order_acquire)) {
        if (!obs::ScrapeOnce(server.port(), "/metrics").empty()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  } else {
    std::fprintf(stderr, "bench_obs_overhead: scrape server: %s "
                 "(serving arm runs without a live scraper)\n",
                 serve_error.c_str());
  }
  const double serving =
      MedianSeconds(workload, reps, &checksum, &run_seconds);
  stop_scraper.store(true, std::memory_order_release);
  if (scraper.joinable()) scraper.join();
  server.Stop();
  obs::StopWatchdog();
  obs::StopTracing();
  json.Add(n, "serving", "balance", static_cast<int>(threads), serving,
           /*intervals_tested=*/0);
  json.AttachMetrics();
  obs::ClearTrace();

  const auto overhead = [untraced](double arm) {
    return untraced > 0.0 ? (arm - untraced) / untraced * 100.0 : 0.0;
  };
  const double traced_pct = overhead(traced);
  const double serving_pct = overhead(serving);
  std::printf(
      "n = %lld, reps = %lld, threads = %lld (checksum %zu)\n"
      "untraced median: %.4fs\n"
      "traced median:   %.4fs (%+.2f%%)\n"
      "serving median:  %.4fs (%+.2f%%, %llu scrapes served)\n",
      static_cast<long long>(n), static_cast<long long>(reps),
      static_cast<long long>(threads), checksum, untraced, traced, traced_pct,
      serving, serving_pct,
      static_cast<unsigned long long>(scrapes.load()));
  json.Flush();

  if (check) {
    bool failed = false;
    if (traced_pct > max_overhead_pct) {
      std::printf("FAIL: traced overhead %.2f%% exceeds budget %.2f%%\n",
                  traced_pct, max_overhead_pct);
      failed = true;
    }
    if (serving_pct > max_overhead_pct) {
      std::printf("FAIL: serving overhead %.2f%% exceeds budget %.2f%%\n",
                  serving_pct, max_overhead_pct);
      failed = true;
    }
    if (failed) return 1;
    std::printf("OK: traced %+.2f%% and serving %+.2f%% within %.2f%% budget\n",
                traced_pct, serving_pct, max_overhead_pct);
  }
  return 0;
}
