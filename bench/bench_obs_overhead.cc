// Instrumentation-overhead guard for the obs subsystem.
//
// Runs the same generation + cover workload with tracing stopped and with
// tracing recording (verbosity 1, the crdiscover default), takes the median
// wall time of each, and reports the relative overhead. The acceptance
// budget is <2% at default verbosity; with --check=1 the bench exits
// non-zero when the measured overhead exceeds --max_overhead_pct, so ctest
// can enforce the budget (the registered smoke uses a relaxed threshold —
// shared CI machines are noisy; run locally with the default for the real
// number).
//
// In a -DCONSERVATION_TRACING=OFF build the macros compile to nothing and
// both arms run identical code: the measured overhead is pure noise around
// zero, which doubles as the "compiled out costs nothing" check.
//
//   bench_obs_overhead --n=200000 --reps=5 --check=1 --max_overhead_pct=2
//
// With --json=<path>, per-arm records (algorithm = "untraced" / "traced")
// are written; the traced record carries the registry snapshot as its
// "metrics" block.

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/job_log.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace {

using namespace conservation;

struct Workload {
  const series::CumulativeSeries* cumulative = nullptr;
  interval::GeneratorOptions options;
  int64_t n = 0;

  // One end-to-end pipeline pass: candidate generation (the instrumented
  // chunked driver) followed by the lazy-greedy cover (seed/select spans).
  size_t Run() const {
    const auto run = bench::RunGenerator(
        *cumulative, core::ConfidenceModel::kBalance,
        interval::AlgorithmKind::kAreaBased, options);
    cover::CoverOptions cover_options;
    cover_options.s_hat = 0.1;
    cover_options.num_threads = options.num_threads;
    const cover::CoverResult cover =
        cover::GreedyPartialSetCover(run.candidates, n, cover_options);
    return run.candidates.size() + static_cast<size_t>(cover.covered);
  }
};

double MedianSeconds(const Workload& workload, int64_t reps,
                     size_t* checksum) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int64_t r = 0; r < reps; ++r) {
    util::Stopwatch timer;
    *checksum += workload.Run();
    seconds.push_back(timer.ElapsedSeconds());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t n = bench::IntFlag(argc, argv, "n", 200000);
  const int64_t reps = bench::IntFlag(argc, argv, "reps", 5);
  const int64_t threads = bench::IntFlag(argc, argv, "threads", 2);
  const bool check = bench::IntFlag(argc, argv, "check", 0) != 0;
  const double max_overhead_pct =
      bench::DoubleFlag(argc, argv, "max_overhead_pct", 2.0);
  bench::BenchJson json =
      bench::BenchJson::FromArgs(argc, argv, "obs_overhead");

  bench::PrintHeader("tracing overhead, generation + cover pipeline");
  datagen::JobLogParams params;
  params.num_ticks = n;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(params);
  const series::CumulativeSeries cumulative(jobs.counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);

  Workload workload;
  workload.cumulative = &cumulative;
  workload.n = n;
  workload.options.type = core::TableauType::kFail;
  workload.options.c_hat = std::max(0.0, *eval.Confidence(1, n) * 0.999);
  workload.options.epsilon = 0.01;
  workload.options.num_threads = static_cast<int>(threads);

  size_t checksum = 0;
  // Warm-up rep so thread-pool spin-up and page faults hit neither arm.
  checksum += workload.Run();

  obs::StopTracing();
  const double untraced = MedianSeconds(workload, reps, &checksum);
  json.Add(n, "untraced", "balance", static_cast<int>(threads), untraced,
           /*intervals_tested=*/0);

  obs::TraceOptions trace_options;
  trace_options.verbosity = 1;
  obs::StartTracing(trace_options);
  const double traced = MedianSeconds(workload, reps, &checksum);
  obs::StopTracing();
  json.Add(n, "traced", "balance", static_cast<int>(threads), traced,
           /*intervals_tested=*/0);
  json.AttachMetrics();
  obs::ClearTrace();

  const double overhead_pct =
      untraced > 0.0 ? (traced - untraced) / untraced * 100.0 : 0.0;
  std::printf(
      "n = %lld, reps = %lld, threads = %lld (checksum %zu)\n"
      "untraced median: %.4fs\ntraced median:   %.4fs\noverhead: %+.2f%%\n",
      static_cast<long long>(n), static_cast<long long>(reps),
      static_cast<long long>(threads), checksum, untraced, traced,
      overhead_pct);
  json.Flush();

  if (check && overhead_pct > max_overhead_pct) {
    std::printf("FAIL: overhead %.2f%% exceeds budget %.2f%%\n", overhead_pct,
                max_overhead_pct);
    return 1;
  }
  if (check) {
    std::printf("OK: overhead within %.2f%% budget\n", max_overhead_pct);
  }
  return 0;
}
