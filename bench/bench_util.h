// Shared helpers for the benchmark harness. Each bench binary regenerates
// one table or figure from the paper (see DESIGN.md §3) and prints the rows
// the paper reports; most accept size/epsilon overrides on the command line
// so the paper-scale configurations can be run when time permits.

#ifndef CONSERVATION_BENCH_BENCH_UTIL_H_
#define CONSERVATION_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/confidence.h"
#include "interval/generator.h"
#include "series/cumulative.h"
#include "series/sequence.h"
#include "util/stopwatch.h"

namespace conservation::bench {

// Parses "--flag=value" style int/double overrides; returns fallback when
// the flag is absent.
inline int64_t IntFlag(int argc, char** argv, const std::string& name,
                       int64_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoll(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

inline double DoubleFlag(int argc, char** argv, const std::string& name,
                         double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atof(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

// Runs a generator over `counts` and returns its stats (timings measured by
// the generator itself, excluding the cumulative preprocessing, matching the
// paper's methodology of excluding linear preprocessing).
struct RunResult {
  std::vector<interval::Interval> candidates;
  interval::GeneratorStats stats;
};

inline RunResult RunGenerator(const series::CumulativeSeries& cumulative,
                              core::ConfidenceModel model,
                              interval::AlgorithmKind kind,
                              const interval::GeneratorOptions& options) {
  const core::ConfidenceEvaluator eval(&cumulative, model);
  const auto generator = interval::MakeGenerator(kind);
  RunResult result;
  result.candidates = generator->Generate(eval, options, &result.stats);
  return result;
}

inline void PrintHeader(const char* title) {
  std::printf("=== %s ===\n", title);
}

}  // namespace conservation::bench

#endif  // CONSERVATION_BENCH_BENCH_UTIL_H_
