// Shared helpers for the benchmark harness. Each bench binary regenerates
// one table or figure from the paper (see DESIGN.md §3) and prints the rows
// the paper reports; most accept size/epsilon overrides on the command line
// so the paper-scale configurations can be run when time permits.
//
// Machine-readable mode: pass --json=<path> and use BenchJson to append
// per-run records {bench, n, algorithm, model, threads, seconds,
// intervals_tested}; the file is written as a JSON array on Flush (or
// destruction), so future PRs can regress against BENCH_*.json trajectories.
// Cover-phase records (AddCover) additionally carry k (candidate count,
// part of the record key) and the CoverStats counters.

#ifndef CONSERVATION_BENCH_BENCH_UTIL_H_
#define CONSERVATION_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/confidence.h"
#include "cover/partial_set_cover.h"
#include "interval/generator.h"
#include "interval/kernel_simd.h"
#include "io/json.h"
#include "obs/metrics.h"
#include "series/cumulative.h"
#include "series/sequence.h"
#include "util/stopwatch.h"

namespace conservation::bench {

// Parses "--flag=value" style overrides; returns fallback when the flag is
// absent. Malformed values (trailing garbage, overflow, empty) are fatal:
// a silent atoll-style 0 turns "--n=1e6" into an empty benchmark run.
[[noreturn]] inline void DieBadFlag(const std::string& name,
                                    const char* text, const char* expected) {
  std::fprintf(stderr,
               "invalid value for --%s: '%s' (expected %s)\n"
               "usage: --%s=<%s>\n",
               name.c_str(), text, expected, name.c_str(), expected);
  std::exit(2);
}

inline const char* FlagValue(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg.rfind(prefix, 0) == 0) return argv[k] + prefix.size();
  }
  return nullptr;
}

inline int64_t IntFlag(int argc, char** argv, const std::string& name,
                       int64_t fallback) {
  const char* text = FlagValue(argc, argv, name);
  if (text == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    DieBadFlag(name, text, "integer");
  }
  return value;
}

inline double DoubleFlag(int argc, char** argv, const std::string& name,
                         double fallback) {
  const char* text = FlagValue(argc, argv, name);
  if (text == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    DieBadFlag(name, text, "number");
  }
  return value;
}

inline std::string StringFlag(int argc, char** argv, const std::string& name,
                              const std::string& fallback) {
  const char* text = FlagValue(argc, argv, name);
  return text == nullptr ? fallback : std::string(text);
}

// Benches write generated artifacts (CSV curves, JSON records) under
// bench/out/ relative to the working directory — created on demand and
// gitignored, so runs never dirty the source tree.
inline std::string OutputPath(const std::string& filename) {
  std::error_code ec;
  std::filesystem::create_directories("bench/out", ec);
  return (std::filesystem::path("bench/out") / filename).string();
}

// Collects per-run records and writes them as a JSON array. Inactive when
// constructed with an empty path (no --json flag), so call sites can record
// unconditionally.
class BenchJson {
 public:
  BenchJson(std::string bench_name, std::string path)
      : bench_name_(std::move(bench_name)), path_(std::move(path)) {}

  // Convenience: picks up --json=<path> from argv.
  static BenchJson FromArgs(int argc, char** argv, const char* bench_name) {
    return BenchJson(bench_name, StringFlag(argc, argv, "json", ""));
  }

  ~BenchJson() { Flush(); }

  bool active() const { return !path_.empty(); }

  struct Record {
    int64_t n = 0;
    std::string algorithm;
    std::string model;
    int threads = 1;
    // SIMD kernel backend the run dispatched to ("scalar" / "avx2" /
    // "neon"). Machine-dependent provenance, not part of the record key —
    // bench_diff.py drops it.
    std::string backend;
    // End-to-end wall-clock of the run (the regression-tracked quantity).
    double seconds = 0.0;
    uint64_t intervals_tested = 0;
    // Parallel observability block, emitted only when has_parallel is set
    // (AddParallel). All values come from GeneratorStats.
    bool has_parallel = false;
    double speedup = 0.0;       // wall(1 thread) / wall(this run)
    double work_seconds = 0.0;  // summed per-worker work time
    int64_t shards = 1;
    int64_t chunks = 1;
    double imbalance = 1.0;  // max/mean work seconds over participants
    double min_shard_seconds = 0.0;
    double median_shard_seconds = 0.0;
    double max_shard_seconds = 0.0;
    uint64_t steals = 0;
    std::vector<uint64_t> chunks_claimed;  // per worker, in worker order
    // Cover-phase observability block, emitted only when has_cover is set
    // (AddCover). k is the candidate count — part of the record key, since
    // cover benches sweep it at fixed n. All counters come from CoverStats.
    bool has_cover = false;
    int64_t k = 0;
    double cover_speedup = 0.0;  // naive seconds / lazy seconds (0 = n/a)
    cover::CoverStats cover_stats;
    // Walk-scheduler observability block, emitted only when has_walks is
    // set (AddWalks). walk_width is the requested width (0 = auto) and is
    // part of the record key in bench_diff.py; the counters come from
    // GeneratorStats.
    bool has_walks = false;
    int walk_width = 0;
    uint64_t walks = 0;
    uint64_t walk_rounds = 0;
    uint64_t walk_lanes = 0;
    uint64_t walk_lane_slots = 0;
    double lane_occupancy = 0.0;
    // Sketch-screen observability block (AddSketch): the screen mode
    // ("auto" / "off") and block span are part of the record key in
    // bench_diff.py; prune rate and the pruned/scanned counters come from
    // GeneratorStats. sketch_speedup is off seconds / this run's seconds
    // (0 on the off rows themselves).
    bool has_sketch = false;
    std::string sketch;
    int64_t sketch_block = 0;
    double prune_rate = 0.0;
    uint64_t anchors_pruned = 0;
    uint64_t sketch_scan_blocks = 0;
    double sketch_speedup = 0.0;
    // Store-footprint block (AddStoreFootprint): estimated resident bytes
    // per tick of one series/store.h tier. Not a timing record — seconds
    // stays 0 and bench_diff.py compares bytes_per_tick via its extras.
    bool has_store = false;
    double bytes_per_tick = 0.0;
    // Incremental-maintenance block (AddIncr): `incr_mode` is "incr"
    // (seconds = mean per-batch AppendBatch latency) or "fresh" (seconds =
    // one full from-scratch DiscoverTableau at the same n); mode and the
    // batch size are part of the record key in bench_diff.py. incr_speedup
    // is fresh seconds / mean batch seconds (0 on fresh rows); the counters
    // come from incr::IncrStats.
    bool has_incr = false;
    std::string incr_mode;
    int64_t batch = 0;
    int64_t batches = 0;
    double incr_speedup = 0.0;
    int64_t candidates_extended = 0;
    int64_t cover_warm_pops = 0;
    int64_t full_rebuilds = 0;
    int64_t dirty_anchors = 0;
    // Serving-daemon block (AddServe): one multi-tenant ingest run against
    // an in-process ServeDaemon. n is the tenant count; `algorithm` is
    // "paced" or "burst" and rate / clients / batch are part of the record
    // key in bench_diff.py (rate is the target ticks/sec/tenant, 0 on
    // burst rows). seconds is the end-to-end wall clock (ingest + drain);
    // p50/p99 are blocking append-to-ack round-trip latencies and
    // ticks_per_sec is the sustained processed-tick rate over the run.
    bool has_serve = false;
    double rate = 0.0;
    int clients = 0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double ticks_per_sec = 0.0;
    int64_t serve_ticks = 0;
    int64_t serve_rejected = 0;
    int64_t serve_faults = 0;
    int64_t serve_evictions = 0;
    // Measurement provenance (AnnotateTrials): timed repeats whose minimum
    // became `seconds`, and untimed warmup runs before them. Emitted when
    // repeats > 0; not part of the record key.
    int repeats = 0;
    int warmups = 0;
    // Serialized obs-registry snapshot (AttachMetrics); emitted as a
    // "metrics" sub-object when non-empty. bench_diff.py drops this block
    // when keying records, so attaching it never breaks regressions.
    std::string metrics_json;
  };

  void Add(int64_t n, const std::string& algorithm, const std::string& model,
           int threads, double seconds, uint64_t intervals_tested) {
    if (active()) {
      records_.push_back(
          MakeRecord(n, algorithm, model, threads, seconds, intervals_tested));
    }
  }

  // Like Add, but also captures the scheduler observability surface of a
  // parallel generator run. `speedup` is wall(1 thread) / wall(this run),
  // computed by the bench (it knows the 1-thread baseline).
  void AddParallel(int64_t n, const std::string& algorithm,
                   const std::string& model, int threads, double speedup,
                   const interval::GeneratorStats& stats) {
    if (!active()) return;
    Record record = MakeRecord(n, algorithm, model, threads,
                               stats.wall_seconds, stats.intervals_tested);
    record.has_parallel = true;
    record.speedup = speedup;
    record.work_seconds = stats.seconds;
    record.shards = stats.shards;
    record.chunks = stats.chunks;
    record.imbalance = stats.ImbalanceRatio();
    record.min_shard_seconds = stats.MinShardSeconds();
    record.median_shard_seconds = stats.MedianShardSeconds();
    record.max_shard_seconds = stats.MaxShardSeconds();
    record.steals = stats.TotalSteals();
    record.chunks_claimed.reserve(stats.shard_work.size());
    for (const interval::ShardWork& work : stats.shard_work) {
      record.chunks_claimed.push_back(work.chunks_claimed);
    }
    records_.push_back(std::move(record));
  }

  // Records one cover-phase run. `algorithm` is "lazy" or "naive", `model`
  // names the synthetic candidate family, `speedup` is naive seconds / this
  // run's seconds (pass 0 when the naive baseline was skipped).
  void AddCover(int64_t n, const std::string& algorithm,
                const std::string& family, int64_t k, int threads,
                double seconds, double speedup,
                const cover::CoverStats& stats) {
    if (!active()) return;
    Record record = MakeRecord(n, algorithm, family, threads, seconds,
                               /*intervals_tested=*/0);
    record.has_cover = true;
    record.k = k;
    record.cover_speedup = speedup;
    record.cover_stats = stats;
    records_.push_back(std::move(record));
  }

  // Like Add, but also captures the walk-scheduler surface of an AB-opt
  // run: requested width plus the walks/rounds/lane counters and derived
  // occupancy from GeneratorStats. Used by the --walks_json record mode.
  void AddWalks(int64_t n, const std::string& algorithm,
                const std::string& model, int threads, double seconds,
                int walk_width, const interval::GeneratorStats& stats) {
    if (!active()) return;
    Record record = MakeRecord(n, algorithm, model, threads, seconds,
                               stats.intervals_tested);
    record.has_walks = true;
    record.walk_width = walk_width;
    record.walks = stats.walks;
    record.walk_rounds = stats.walk_rounds;
    record.walk_lanes = stats.walk_lanes;
    record.walk_lane_slots = stats.walk_lane_slots;
    record.lane_occupancy = stats.LaneOccupancy();
    records_.push_back(std::move(record));
  }

  // Records one generator run of the sketch-screen ablation. `sketch` is
  // "auto" or "off" (the screen setting the run used), `family` names the
  // series family (the model key slot), `speedup` is off seconds / this
  // run's seconds (pass 0 on the off rows). prune_rate is
  // anchors_pruned / n.
  void AddSketch(int64_t n, const std::string& algorithm,
                 const std::string& family, int threads, double seconds,
                 const std::string& sketch, int64_t sketch_block,
                 double speedup, const interval::GeneratorStats& stats) {
    if (!active()) return;
    Record record = MakeRecord(n, algorithm, family, threads, seconds,
                               stats.intervals_tested);
    record.has_sketch = true;
    record.sketch = sketch;
    record.sketch_block = sketch_block;
    record.prune_rate =
        n > 0 ? static_cast<double>(stats.anchors_pruned) /
                    static_cast<double>(n)
              : 0.0;
    record.anchors_pruned = stats.anchors_pruned;
    record.sketch_scan_blocks = stats.sketch_blocks;
    record.sketch_speedup = speedup;
    records_.push_back(std::move(record));
  }

  // Records one configuration of the incremental-maintenance ablation.
  // `mode` is "incr" or "fresh", `family` names the workload (the model key
  // slot), `batch` is the append-batch size (0 on fresh rows), `batches` the
  // number of timed AppendBatch calls averaged into `seconds`, `speedup`
  // fresh seconds / mean batch seconds (0 on fresh rows). The counters are
  // the engine's lifetime incr::IncrStats (pass zeros on fresh rows).
  void AddIncr(int64_t n, const std::string& algorithm,
               const std::string& family, const std::string& mode,
               int64_t batch, int64_t batches, double seconds, double speedup,
               int64_t candidates_extended, int64_t cover_warm_pops,
               int64_t full_rebuilds, int64_t dirty_anchors) {
    if (!active()) return;
    Record record = MakeRecord(n, algorithm, family, 1, seconds,
                               /*intervals_tested=*/0);
    record.has_incr = true;
    record.incr_mode = mode;
    record.batch = batch;
    record.batches = batches;
    record.incr_speedup = speedup;
    record.candidates_extended = candidates_extended;
    record.cover_warm_pops = cover_warm_pops;
    record.full_rebuilds = full_rebuilds;
    record.dirty_anchors = dirty_anchors;
    records_.push_back(std::move(record));
  }

  // Records one multi-tenant serving-daemon run. `mode` is "paced" or
  // "burst", `rate` the target ticks/sec/tenant (0 on burst rows),
  // `seconds` the end-to-end wall clock, p50/p99 the append-to-ack
  // round-trip latencies in milliseconds, `ticks_per_sec` the sustained
  // processed-tick rate.
  void AddServe(int64_t tenants, const std::string& mode, double rate,
                int clients, int64_t batch, double seconds, double p50_ms,
                double p99_ms, double ticks_per_sec, int64_t ticks,
                int64_t rejected, int64_t faults, int64_t evictions) {
    if (!active()) return;
    Record record = MakeRecord(tenants, mode, "serve", clients, seconds,
                               /*intervals_tested=*/0);
    record.has_serve = true;
    record.rate = rate;
    record.clients = clients;
    record.batch = batch;
    record.p50_ms = p50_ms;
    record.p99_ms = p99_ms;
    record.ticks_per_sec = ticks_per_sec;
    record.serve_ticks = ticks;
    record.serve_rejected = rejected;
    record.serve_faults = faults;
    record.serve_evictions = evictions;
    records_.push_back(std::move(record));
  }

  // Records the estimated resident footprint of one series/store.h tier.
  void AddStoreFootprint(int64_t n, const std::string& tier,
                         int64_t sketch_block, double bytes_per_tick) {
    if (!active()) return;
    Record record = MakeRecord(n, "store", tier, 1, /*seconds=*/0.0,
                               /*intervals_tested=*/0);
    record.has_store = true;
    record.sketch_block = sketch_block;
    record.bytes_per_tick = bytes_per_tick;
    records_.push_back(std::move(record));
  }

  // Stamps measurement provenance (timed repeats, warmup runs) onto the
  // most recently added record. No-op when inactive or before the first
  // record.
  void AnnotateTrials(int repeats, int warmups) {
    if (!active() || records_.empty()) return;
    records_.back().repeats = repeats;
    records_.back().warmups = warmups;
  }

  // Captures the process-wide obs-registry snapshot onto the most recently
  // added record. Call right after Add*/AddCover when the run should carry
  // its counter state (counters accumulate, so diff consecutive records to
  // get per-run deltas). No-op when inactive or before the first record.
  void AttachMetrics() {
    if (!active() || records_.empty()) return;
    records_.back().metrics_json = obs::Registry::Global().Snapshot().ToJson();
  }

  // Writes all records to the path; called automatically on destruction.
  void Flush() {
    if (!active() || flushed_) return;
    io::JsonWriter json;
    json.BeginArray();
    for (const Record& record : records_) {
      json.BeginObject();
      json.Key("bench");
      json.String(bench_name_);
      json.Key("n");
      json.Int(record.n);
      json.Key("algorithm");
      json.String(record.algorithm);
      json.Key("model");
      json.String(record.model);
      json.Key("threads");
      json.Int(record.threads);
      if (!record.backend.empty()) {
        json.Key("backend");
        json.String(record.backend);
      }
      json.Key("seconds");
      json.Double(record.seconds);
      json.Key("intervals_tested");
      json.Int(static_cast<int64_t>(record.intervals_tested));
      if (record.has_parallel) {
        json.Key("speedup");
        json.Double(record.speedup);
        json.Key("work_seconds");
        json.Double(record.work_seconds);
        json.Key("shards");
        json.Int(record.shards);
        json.Key("chunks");
        json.Int(record.chunks);
        json.Key("imbalance");
        json.Double(record.imbalance);
        json.Key("min_shard_seconds");
        json.Double(record.min_shard_seconds);
        json.Key("median_shard_seconds");
        json.Double(record.median_shard_seconds);
        json.Key("max_shard_seconds");
        json.Double(record.max_shard_seconds);
        json.Key("steals");
        json.Int(static_cast<int64_t>(record.steals));
        json.Key("chunks_claimed");
        json.BeginArray();
        for (const uint64_t claimed : record.chunks_claimed) {
          json.Int(static_cast<int64_t>(claimed));
        }
        json.EndArray();
      }
      if (record.has_walks) {
        json.Key("walk_width");
        json.Int(record.walk_width);
        json.Key("walks");
        json.Int(static_cast<int64_t>(record.walks));
        json.Key("walk_rounds");
        json.Int(static_cast<int64_t>(record.walk_rounds));
        json.Key("walk_lanes");
        json.Int(static_cast<int64_t>(record.walk_lanes));
        json.Key("walk_lane_slots");
        json.Int(static_cast<int64_t>(record.walk_lane_slots));
        json.Key("lane_occupancy");
        json.Double(record.lane_occupancy);
      }
      if (record.has_sketch) {
        json.Key("sketch");
        json.String(record.sketch);
        json.Key("sketch_block");
        json.Int(record.sketch_block);
        json.Key("prune_rate");
        json.Double(record.prune_rate);
        json.Key("anchors_pruned");
        json.Int(static_cast<int64_t>(record.anchors_pruned));
        json.Key("sketch_scan_blocks");
        json.Int(static_cast<int64_t>(record.sketch_scan_blocks));
        json.Key("sketch_speedup");
        json.Double(record.sketch_speedup);
      }
      if (record.has_store) {
        json.Key("sketch_block");
        json.Int(record.sketch_block);
        json.Key("bytes_per_tick");
        json.Double(record.bytes_per_tick);
      }
      if (record.has_incr) {
        json.Key("incr_mode");
        json.String(record.incr_mode);
        json.Key("batch");
        json.Int(record.batch);
        json.Key("batches");
        json.Int(record.batches);
        json.Key("incr_speedup");
        json.Double(record.incr_speedup);
        json.Key("candidates_extended");
        json.Int(record.candidates_extended);
        json.Key("cover_warm_pops");
        json.Int(record.cover_warm_pops);
        json.Key("full_rebuilds");
        json.Int(record.full_rebuilds);
        json.Key("dirty_anchors");
        json.Int(record.dirty_anchors);
      }
      if (record.has_serve) {
        json.Key("rate");
        json.Double(record.rate);
        json.Key("clients");
        json.Int(record.clients);
        json.Key("batch");
        json.Int(record.batch);
        json.Key("p50_ms");
        json.Double(record.p50_ms);
        json.Key("p99_ms");
        json.Double(record.p99_ms);
        json.Key("ticks_per_sec");
        json.Double(record.ticks_per_sec);
        json.Key("serve_ticks");
        json.Int(record.serve_ticks);
        json.Key("serve_rejected");
        json.Int(record.serve_rejected);
        json.Key("serve_faults");
        json.Int(record.serve_faults);
        json.Key("serve_evictions");
        json.Int(record.serve_evictions);
      }
      if (record.repeats > 0) {
        json.Key("repeats");
        json.Int(record.repeats);
        json.Key("warmups");
        json.Int(record.warmups);
      }
      if (record.has_cover) {
        json.Key("k");
        json.Int(record.k);
        json.Key("cover_speedup");
        json.Double(record.cover_speedup);
        json.Key("rounds");
        json.Int(record.cover_stats.rounds);
        json.Key("heap_pops");
        json.Int(record.cover_stats.heap_pops);
        json.Key("stale_reevaluations");
        json.Int(record.cover_stats.stale_reevaluations);
        json.Key("tick_visits");
        json.Int(record.cover_stats.tick_visits);
        json.Key("peak_heap_size");
        json.Int(record.cover_stats.peak_heap_size);
        json.Key("seed_seconds");
        json.Double(record.cover_stats.seed_seconds);
        json.Key("select_seconds");
        json.Double(record.cover_stats.select_seconds);
      }
      if (!record.metrics_json.empty()) {
        json.Key("metrics");
        json.Raw(record.metrics_json);
      }
      json.EndObject();
    }
    json.EndArray();
    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write --json file %s\n", path_.c_str());
      flushed_ = true;  // don't retry (and re-warn) from the destructor
      return;
    }
    std::fprintf(file, "%s\n", json.str().c_str());
    std::fclose(file);
    std::printf("wrote %zu JSON records to %s\n", records_.size(),
                path_.c_str());
    flushed_ = true;
  }

 private:
  static Record MakeRecord(int64_t n, const std::string& algorithm,
                           const std::string& model, int threads,
                           double seconds, uint64_t intervals_tested) {
    Record record;
    record.n = n;
    record.algorithm = algorithm;
    record.model = model;
    record.threads = threads;
    record.backend = interval::internal::SimdBackendName(
        interval::internal::ActiveSimdBackend());
    record.seconds = seconds;
    record.intervals_tested = intervals_tested;
    return record;
  }

  std::string bench_name_;
  std::string path_;
  std::vector<Record> records_;
  bool flushed_ = false;
};

// Runs a generator over `counts` and returns its stats (timings measured by
// the generator itself, excluding the cumulative preprocessing, matching the
// paper's methodology of excluding linear preprocessing).
struct RunResult {
  std::vector<interval::Interval> candidates;
  interval::GeneratorStats stats;
};

inline RunResult RunGenerator(const series::CumulativeSeries& cumulative,
                              core::ConfidenceModel model,
                              interval::AlgorithmKind kind,
                              const interval::GeneratorOptions& options) {
  const core::ConfidenceEvaluator eval(&cumulative, model);
  const auto generator = interval::MakeGenerator(kind);
  RunResult result;
  result.candidates = generator->Generate(eval, options, &result.stats);
  return result;
}

inline void PrintHeader(const char* title) {
  std::printf("=== %s ===\n", title);
}

}  // namespace conservation::bench

#endif  // CONSERVATION_BENCH_BENCH_UTIL_H_
