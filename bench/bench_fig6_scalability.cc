// Regenerates Figure 6 of the paper (§IV.E, performance and scalability):
//   left   — wall-clock time of candidate generation (hold tableaux) on
//            prefixes of the Job-Log data: exhaustive vs area-based at
//            several eps;
//   middle — hold-interval generation time on the TCP trace for all three
//            models and several eps;
//   right  — same for fail intervals.
//
// The exhaustive algorithm is quadratic, so its prefix sizes are capped
// (--naive_max=...); the approximate algorithm runs on larger prefixes. The
// paper's observation to reproduce: an order-of-magnitude (or more) speedup
// even at small eps, growing with n.

#include <cmath>

#include "bench/bench_util.h"
#include "datagen/job_log.h"
#include "datagen/tcp_trace.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const int64_t jobs_n = bench::IntFlag(argc, argv, "jobs_n", 200000);
  const int64_t tcp_n = bench::IntFlag(argc, argv, "tcp_n", 40000);
  const int64_t naive_max = bench::IntFlag(argc, argv, "naive_max", 50000);
  // Anchor-sharded generation threads (1 = the paper's sequential setting).
  const int threads =
      static_cast<int>(bench::IntFlag(argc, argv, "threads", 1));
  bench::BenchJson json = bench::BenchJson::FromArgs(argc, argv, "fig6");
  const double epsilons[] = {0.1, 0.01, 0.001};

  bench::PrintHeader("Figure 6 (left): Job-Log prefixes, balance hold");
  datagen::JobLogParams jobs_params;
  jobs_params.num_ticks = jobs_n;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(jobs_params);

  // c_hat slightly above the whole-data confidence, as in the paper, so the
  // full sweep runs (no single interval covers everything).
  {
    const series::CumulativeSeries cumulative(jobs.counts);
    const core::ConfidenceEvaluator eval(&cumulative,
                                         core::ConfidenceModel::kBalance);
    std::printf("whole-data confidence: %.6f\n", *eval.Confidence(1, jobs_n));
  }

  io::TablePrinter left({"n", "algorithm", "eps", "intervals tested",
                         "candidates", "seconds"});
  for (int64_t n = jobs_n / 8; n <= jobs_n; n *= 2) {
    const series::CountSequence prefix = jobs.counts.Prefix(n);
    const series::CumulativeSeries cumulative(prefix);
    const core::ConfidenceEvaluator eval(&cumulative,
                                         core::ConfidenceModel::kBalance);
    const double c_hat =
        std::min(1.0, *eval.Confidence(1, n) * 1.000001 + 1e-9);

    interval::GeneratorOptions options;
    options.type = core::TableauType::kHold;
    options.c_hat = c_hat;
    options.num_threads = threads;

    if (n <= naive_max) {
      options.epsilon = 0.01;  // unused by exhaustive
      const auto run = bench::RunGenerator(
          cumulative, core::ConfidenceModel::kBalance,
          interval::AlgorithmKind::kExhaustive, options);
      left.AddRow({util::StrFormat("%lld", static_cast<long long>(n)),
                   "exhaustive", "-",
                   util::StrFormat("%llu", static_cast<unsigned long long>(
                                               run.stats.intervals_tested)),
                   util::StrFormat("%llu", static_cast<unsigned long long>(
                                               run.stats.candidates)),
                   util::StrFormat("%.3f", run.stats.seconds)});
    }
    for (const double eps : epsilons) {
      options.epsilon = eps;
      const auto run = bench::RunGenerator(
          cumulative, core::ConfidenceModel::kBalance,
          interval::AlgorithmKind::kAreaBased, options);
      left.AddRow({util::StrFormat("%lld", static_cast<long long>(n)),
                   "area-based", util::StrFormat("%g", eps),
                   util::StrFormat("%llu", static_cast<unsigned long long>(
                                               run.stats.intervals_tested)),
                   util::StrFormat("%llu", static_cast<unsigned long long>(
                                               run.stats.candidates)),
                   util::StrFormat("%.3f", run.stats.wall_seconds)});
      json.Add(n, "area_based", "balance/hold", threads,
               run.stats.wall_seconds, run.stats.intervals_tested);
    }
  }
  std::printf("%s\n", left.ToString().c_str());

  datagen::TcpTraceParams tcp_params;
  tcp_params.num_ticks = tcp_n;
  const datagen::TcpTraceData tcp = datagen::GenerateTcpTrace(tcp_params);
  const series::CumulativeSeries tcp_cumulative(tcp.counts);

  for (const auto type :
       {core::TableauType::kHold, core::TableauType::kFail}) {
    bench::PrintHeader(type == core::TableauType::kHold
                           ? "Figure 6 (middle): TCP trace, hold intervals"
                           : "Figure 6 (right): TCP trace, fail intervals");
    io::TablePrinter table({"model", "algorithm", "eps", "intervals tested",
                            "seconds"});
    for (const auto model :
         {core::ConfidenceModel::kBalance, core::ConfidenceModel::kCredit,
          core::ConfidenceModel::kDebit}) {
      const core::ConfidenceEvaluator eval(&tcp_cumulative, model);
      const double overall = eval.Confidence(1, tcp_n).value_or(0.5);
      interval::GeneratorOptions options;
      options.type = type;
      options.num_threads = threads;
      // Slightly above overall confidence, as in the paper.
      options.c_hat = std::min(1.0, overall * 1.00001 + 1e-9);

      if (tcp_n <= naive_max) {
        const auto naive = bench::RunGenerator(
            tcp_cumulative, model, interval::AlgorithmKind::kExhaustive,
            options);
        table.AddRow(
            {core::ConfidenceModelName(model), "exhaustive", "-",
             util::StrFormat("%llu", static_cast<unsigned long long>(
                                         naive.stats.intervals_tested)),
             util::StrFormat("%.3f", naive.stats.seconds)});
      }
      for (const double eps : epsilons) {
        options.epsilon = eps;
        const auto run =
            bench::RunGenerator(tcp_cumulative, model,
                                interval::AlgorithmKind::kAreaBased, options);
        table.AddRow(
            {core::ConfidenceModelName(model), "area-based",
             util::StrFormat("%g", eps),
             util::StrFormat("%llu", static_cast<unsigned long long>(
                                         run.stats.intervals_tested)),
             util::StrFormat("%.3f", run.stats.wall_seconds)});
        json.Add(tcp_n, "area_based",
                 util::StrFormat("%s/%s", core::ConfidenceModelName(model),
                                 type == core::TableauType::kHold ? "hold"
                                                                  : "fail"),
                 threads, run.stats.wall_seconds,
                 run.stats.intervals_tested);
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("reading: area-based tests orders of magnitude fewer "
              "intervals than the quadratic exhaustive scan, even at "
              "eps = 0.001, and scales near-linearly in n.\n");
  return 0;
}
