// Regenerates Figure 5 and the §IV.D perturbed-data experiments:
//   * well-behaved vs perturbed cumulative curves (ASCII sketch + CSV dump);
//   * hold (c_hat = 0.99) and fail (c_hat = 0.1) tableaux under injected
//     delay for d in {0.01, 0.1, 0.25};
//   * loss (no compensation): hold picks the pre-drop prefix, balance-model
//     fail keeps failing to the end, credit/debit forgive the suffix;
//   * dampened (max 25% per-tick) drop;
//   * approximation fidelity: eps = 0.01 vs eps = 0.1 vs exact;
//   * Optimized Support Rules baseline on the same data.

#include <algorithm>

#include "bench/bench_util.h"
#include "core/conservation_rule.h"
#include "datagen/perturb.h"
#include "datagen/router.h"
#include "io/csv.h"
#include "mining/support_rules.h"
#include "util/string_util.h"

namespace {

using namespace conservation;

void PrintTableau(const char* label, const core::Tableau& tableau) {
  std::printf("%s: %zu interval(s)%s\n", label, tableau.size(),
              tableau.support_satisfied ? "" : " [support not satisfied]");
  size_t shown = 0;
  for (const core::TableauRow& row : tableau.rows) {
    if (++shown > 8) {
      std::printf("    ... (%zu more)\n", tableau.size() - 8);
      break;
    }
    std::printf("    %-14s conf=%.4f\n", row.interval.ToString().c_str(),
                row.confidence);
  }
}

core::Tableau Discover(const series::CountSequence& counts,
                       core::TableauType type, core::ConfidenceModel model,
                       double c_hat, double s_hat, double epsilon,
                       interval::AlgorithmKind kind =
                           interval::AlgorithmKind::kAreaBased) {
  auto rule = core::ConservationRule::Create(counts);
  CR_CHECK(rule.ok());
  core::TableauRequest request;
  request.type = type;
  request.model = model;
  request.c_hat = c_hat;
  request.s_hat = s_hat;
  request.epsilon = epsilon;
  request.algorithm = kind;
  auto tableau = rule->DiscoverTableau(request);
  CR_CHECK(tableau.ok());
  return std::move(tableau).value();
}

void SketchCurves(const series::CountSequence& counts, const char* label) {
  const series::CumulativeSeries cumulative(counts);
  const int64_t n = counts.n();
  std::printf("%s (cumulative A=out '.', B=in '#', 60 columns):\n", label);
  const int columns = 60;
  const double max_b = cumulative.B(n);
  for (int row = 9; row >= 0; --row) {
    std::string line(columns, ' ');
    for (int c = 0; c < columns; ++c) {
      const int64_t t = std::max<int64_t>(1, (c + 1) * n / columns);
      const int a_row = static_cast<int>(cumulative.A(t) / max_b * 9.999);
      const int b_row = static_cast<int>(cumulative.B(t) / max_b * 9.999);
      if (b_row == row) line[static_cast<size_t>(c)] = '#';
      if (a_row == row) line[static_cast<size_t>(c)] = '.';
    }
    std::printf("  |%s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t n = bench::IntFlag(argc, argv, "n", 906);
  const series::CountSequence base = datagen::GenerateWellBehavedTraffic(n);

  bench::PrintHeader("Figure 5: well-behaved vs perturbed curves");
  SketchCurves(base, "well-behaved");
  {
    auto rule = core::ConservationRule::Create(base);
    std::printf("overall balance confidence: %.5f; fail tableau at 0.3: ",
                *rule->OverallConfidence(core::ConfidenceModel::kBalance));
    const core::Tableau fail =
        Discover(base, core::TableauType::kFail,
                 core::ConfidenceModel::kBalance, 0.3, 0.05, 0.01);
    std::printf("%s\n\n", fail.covered == 0 ? "EMPTY (as in the paper)"
                                            : "non-empty (unexpected)");
  }

  datagen::PerturbationSpec delay_spec;
  delay_spec.fraction = 0.1;
  delay_spec.compensate = true;
  delay_spec.latest_start_fraction = 0.4;
  datagen::PerturbationInfo delay_info;
  const series::CountSequence delayed =
      datagen::ApplyPerturbation(base, delay_spec, &delay_info);
  SketchCurves(delayed, "perturbed (d = 0.1, delay)");
  std::printf("drop = [%lld, %lld], recovery at %lld\n\n",
              static_cast<long long>(delay_info.drop_begin),
              static_cast<long long>(delay_info.drop_end),
              static_cast<long long>(delay_info.recovery_tick));
  {
    std::vector<double> a_base;
    std::vector<double> a_pert;
    std::vector<double> b_all;
    const series::CumulativeSeries cb(base);
    const series::CumulativeSeries cp(delayed);
    for (int64_t t = 1; t <= n; ++t) {
      a_base.push_back(cb.A(t));
      a_pert.push_back(cp.A(t));
      b_all.push_back(cb.B(t));
    }
    const std::string csv_path = bench::OutputPath("fig5_curves.csv");
    const auto status = io::WriteColumnsCsv(
        csv_path,
        {{"A_wellbehaved", a_base}, {"A_perturbed", a_pert}, {"B", b_all}});
    std::printf("curve data written to %s (%s)\n\n", csv_path.c_str(),
                status.ok() ? "ok" : status.ToString().c_str());
  }

  bench::PrintHeader("delay perturbation sweep (balance model)");
  for (const double d : {0.01, 0.1, 0.25}) {
    datagen::PerturbationSpec spec;
    spec.fraction = d;
    spec.compensate = true;
    spec.latest_start_fraction = 0.4;
    datagen::PerturbationInfo info;
    const series::CountSequence perturbed =
        datagen::ApplyPerturbation(base, spec, &info);
    std::printf("d = %.2f (drop [%lld, %lld], recovery %lld)\n", d,
                static_cast<long long>(info.drop_begin),
                static_cast<long long>(info.drop_end),
                static_cast<long long>(info.recovery_tick));
    PrintTableau("  hold c=0.99",
                 Discover(perturbed, core::TableauType::kHold,
                          core::ConfidenceModel::kBalance, 0.99, 0.6, 0.01));
    PrintTableau("  fail c=0.1",
                 Discover(perturbed, core::TableauType::kFail,
                          core::ConfidenceModel::kBalance, 0.1, 0.02, 0.01));
  }
  std::printf("\n");

  bench::PrintHeader("loss (no compensation), d = 0.25");
  datagen::PerturbationSpec loss_spec;
  loss_spec.fraction = 0.25;
  loss_spec.compensate = false;
  loss_spec.latest_start_fraction = 0.4;
  datagen::PerturbationInfo loss_info;
  const series::CountSequence lost =
      datagen::ApplyPerturbation(base, loss_spec, &loss_info);
  std::printf("drop = [%lld, %lld], never compensated\n",
              static_cast<long long>(loss_info.drop_begin),
              static_cast<long long>(loss_info.drop_end));
  PrintTableau("  hold c=0.99 (balance)",
               Discover(lost, core::TableauType::kHold,
                        core::ConfidenceModel::kBalance, 0.99, 0.3, 0.01));
  PrintTableau("  fail c=0.3 (balance; runs to the end)",
               Discover(lost, core::TableauType::kFail,
                        core::ConfidenceModel::kBalance, 0.3, 0.7, 0.01));
  PrintTableau("  fail c=0.3 (credit; drop period only)",
               Discover(lost, core::TableauType::kFail,
                        core::ConfidenceModel::kCredit, 0.3, 0.1, 0.01));
  PrintTableau("  fail c=0.3 (debit; drop period only)",
               Discover(lost, core::TableauType::kFail,
                        core::ConfidenceModel::kDebit, 0.3, 0.1, 0.01));
  std::printf("\n");

  bench::PrintHeader("dampened drop (max 25% per tick), d = 0.1, loss");
  datagen::PerturbationSpec damp_spec;
  damp_spec.fraction = 0.1;
  damp_spec.compensate = false;
  damp_spec.max_step_drop_fraction = 0.25;
  damp_spec.latest_start_fraction = 0.4;
  datagen::PerturbationInfo damp_info;
  const series::CountSequence dampened =
      datagen::ApplyPerturbation(base, damp_spec, &damp_info);
  std::printf("gradual drop spread over [%lld, %lld]\n",
              static_cast<long long>(damp_info.drop_begin),
              static_cast<long long>(damp_info.drop_end));
  PrintTableau("  hold c=0.99 (balance; looser-fitting intervals)",
               Discover(dampened, core::TableauType::kHold,
                        core::ConfidenceModel::kBalance, 0.99, 0.3, 0.01));
  std::printf("\n");

  bench::PrintHeader("approximation fidelity: exact vs eps = 0.01 vs 0.1");
  for (const auto& [label, kind, eps] :
       {std::tuple{"exact      ", interval::AlgorithmKind::kExhaustive, 0.01},
        std::tuple{"eps = 0.01 ", interval::AlgorithmKind::kAreaBased, 0.01},
        std::tuple{"eps = 0.1  ", interval::AlgorithmKind::kAreaBased, 0.1}}) {
    const core::Tableau hold =
        Discover(delayed, core::TableauType::kHold,
                 core::ConfidenceModel::kBalance, 0.99, 0.6, eps, kind);
    const core::Tableau fail =
        Discover(delayed, core::TableauType::kFail,
                 core::ConfidenceModel::kBalance, 0.1, 0.02, eps, kind);
    int64_t hold_len = 0;
    for (const auto& row : hold.rows) hold_len += row.interval.length();
    int64_t fail_len = 0;
    for (const auto& row : fail.rows) fail_len += row.interval.length();
    std::printf("  %s hold: %zu intervals, total length %lld; "
                "fail: %zu intervals, total length %lld\n",
                label, hold.size(), static_cast<long long>(hold_len),
                fail.size(), static_cast<long long>(fail_len));
  }
  std::printf("\n");

  bench::PrintHeader("Optimized Support Rules baseline on the delayed data");
  for (const auto metric : {mining::RatioMetric::kInstantaneousSum,
                            mining::RatioMetric::kZeroBaselineArea}) {
    mining::SupportRulesOptions options;
    options.metric = metric;
    options.type = core::TableauType::kFail;
    options.c_hat = 0.5;
    options.min_length = 2;
    const auto mined = mining::MineMaximalIntervals(delayed, options);
    std::printf("  %s: %zu maximal fail interval(s)\n",
                mining::RatioMetricName(metric), mined.size());
    size_t shown = 0;
    for (const auto& m : mined) {
      if (++shown > 6) break;
      std::printf("    %-14s ratio=%.3f\n", m.interval.ToString().c_str(),
                  m.ratio);
    }
  }
  std::printf("  (paper: OSR detects the raw drop but cannot distinguish "
              "delay from loss or credit history)\n");
  return 0;
}
