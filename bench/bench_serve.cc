// Many-tenant serving throughput/latency benchmark: an in-process
// ServeDaemon (src/serve/daemon.h) driven over real loopback sockets by a
// small pool of client threads, each blocking on append-to-ack round
// trips for its shard of tenants. Reports, per configuration:
//
//   * p50 / p99 append-to-ack latency (admission is O(1) under the daemon
//     mutex, so the ack RTT measures the ingest path, not tableau work);
//   * sustained processed ticks/sec over the whole run (ingest + drain —
//     every accepted tick applied to its tenant's stream session).
//
// Two pacing modes per row: "burst" (clients push as fast as acks come
// back — the capacity ceiling) and "paced" (clients hold each tenant to
// --rate ticks/sec — the serving SLO shape; the acceptance row is 1000
// tenants at 10 ticks/sec/tenant).
//
// Flags:
//   --tenants=N --ticks=T --batch=M --clients=C --rate=R   single row
//     (R=0 means burst); without --tenants a default sweep runs: burst
//     rows at 256/1000/4096/10000 tenants plus the paced acceptance row.
//   --readers=K         daemon reader threads (default = clients)
//   --max_hot=H         hot-session bound (default 0 = unbounded)
//   --check=1           gate: every accepted tick processed; paced rows
//                       kept pace within 25%; p99 > 0 reported
//   --max_p99_ms=B      additional p99 budget gate (0 = off)
//   --json=PATH         append machine-readable records (bench_diff.py)
//
// Methodology notes: latencies are collected per client thread (one
// steady_clock stamp around each blocking Append) and merged before the
// percentile cut; the tick data is a cheap deterministic LCG stream per
// tenant (the daemon's dominance filter normalizes it), so generation
// cost never shadows the serving path being measured.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "util/check.h"

namespace conservation {
namespace {

struct RowConfig {
  int64_t tenants = 0;
  int64_t ticks = 0;       // per tenant
  int64_t batch = 8;       // ticks per append frame
  int clients = 2;         // driver threads (one connection each)
  double rate = 0.0;       // target ticks/sec/tenant; 0 = burst
};

struct RowResult {
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double ticks_per_sec = 0.0;
  int64_t ticks_total = 0;
  int64_t rejected = 0;
  int64_t faults = 0;
  int64_t evictions = 0;
};

// Deterministic per-tenant tick stream: varied positive counts with b
// mostly dominating a (the registry's filter makes any residue valid).
void FillTicks(uint64_t tenant_id, int64_t at, int64_t m, double* a,
               double* b) {
  uint64_t state = tenant_id * 2654435761ULL + 12345;
  for (int64_t k = 0; k < m; ++k) {
    const int64_t t = at + k;
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double inbound = 1.0 + static_cast<double>((state >> 33) % 9);
    const double drain =
        static_cast<double>((tenant_id + static_cast<uint64_t>(t)) % 10) /
        10.0;
    b[k] = inbound;
    a[k] = inbound * drain;
  }
}

double PercentileMs(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const size_t at = std::min(
      sorted_seconds.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_seconds.size())));
  return sorted_seconds[at] * 1000.0;
}

RowResult RunRow(const RowConfig& config, int readers, int64_t max_hot) {
  serve::TenantConfig tenant_config;
  tenant_config.request.type = core::TableauType::kFail;
  tenant_config.request.c_hat = 0.5;
  tenant_config.request.s_hat = 0.05;
  tenant_config.append_only = true;
  tenant_config.max_hot = max_hot;

  serve::DaemonOptions options;
  options.readers = readers;
  options.refresh_ms = 100;
  serve::ServeDaemon daemon(tenant_config, options);
  CR_CHECK(daemon.Start().ok());

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(config.clients));
  std::atomic<int64_t> rejected{0};
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    drivers.emplace_back([&, c] {
      serve::ServeClient client;
      CR_CHECK(client.Connect(daemon.port()).ok());
      std::vector<double>& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(
          (config.tenants / config.clients + 1) *
          (config.ticks / config.batch + 1)));
      std::vector<double> a(static_cast<size_t>(config.batch));
      std::vector<double> b(static_cast<size_t>(config.batch));
      // This thread's tenant shard, driven round-robin one batch per
      // visit so queues stay shallow and pacing applies shard-wide.
      std::vector<int64_t> sent;
      std::vector<uint64_t> ids;
      for (int64_t id = c; id < config.tenants; id += config.clients) {
        ids.push_back(static_cast<uint64_t>(id + 1));
        sent.push_back(0);
      }
      bool progress = true;
      while (progress) {
        progress = false;
        for (size_t s = 0; s < ids.size(); ++s) {
          const int64_t remaining = config.ticks - sent[s];
          if (remaining <= 0) continue;
          progress = true;
          const int64_t m = std::min(config.batch, remaining);
          if (config.rate > 0) {
            for (;;) {
              const double elapsed =
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
              if (static_cast<double>(sent[s]) <= config.rate * elapsed) {
                break;
              }
              std::this_thread::sleep_for(std::chrono::microseconds(500));
            }
          }
          FillTicks(ids[s], sent[s], m, a.data(), b.data());
          for (;;) {
            const auto t0 = std::chrono::steady_clock::now();
            auto ack = client.Append(ids[s], a.data(), b.data(), m);
            const auto t1 = std::chrono::steady_clock::now();
            CR_CHECK(ack.ok());
            lat.push_back(std::chrono::duration<double>(t1 - t0).count());
            if (ack->status == serve::AckStatus::kOk) break;
            CR_CHECK(ack->status == serve::AckStatus::kBackpressure);
            rejected.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          sent[s] += m;
        }
      }
    });
  }
  for (std::thread& thread : drivers) thread.join();
  daemon.DrainQueues();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const serve::DaemonStats stats = daemon.Stats();
  const int64_t expected = config.tenants * config.ticks;
  CR_CHECK(stats.ticks_ingested == static_cast<uint64_t>(expected));
  CR_CHECK(stats.ticks_processed == stats.ticks_ingested);

  RowResult result;
  result.wall_seconds = wall;
  result.ticks_total = expected;
  result.ticks_per_sec = wall > 0 ? static_cast<double>(expected) / wall : 0;
  result.rejected = rejected.load();
  result.faults = daemon.registry().faults();
  result.evictions = daemon.registry().evictions();
  std::vector<double> merged;
  for (const std::vector<double>& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  result.p50_ms = PercentileMs(merged, 0.50);
  result.p99_ms = PercentileMs(merged, 0.99);
  daemon.Stop();
  return result;
}

}  // namespace
}  // namespace conservation

int main(int argc, char** argv) {
  using namespace conservation;

  const int64_t flag_tenants = bench::IntFlag(argc, argv, "tenants", 0);
  const int64_t flag_ticks = bench::IntFlag(argc, argv, "ticks", 64);
  const int64_t flag_batch = bench::IntFlag(argc, argv, "batch", 8);
  const int64_t flag_clients = bench::IntFlag(argc, argv, "clients", 2);
  const double flag_rate = bench::DoubleFlag(argc, argv, "rate", 0.0);
  const int64_t readers =
      bench::IntFlag(argc, argv, "readers", flag_clients);
  const int64_t max_hot = bench::IntFlag(argc, argv, "max_hot", 0);
  const bool check = bench::IntFlag(argc, argv, "check", 0) != 0;
  const double max_p99_ms = bench::DoubleFlag(argc, argv, "max_p99_ms", 0.0);
  bench::BenchJson json = bench::BenchJson::FromArgs(argc, argv, "serve");

  std::vector<RowConfig> rows;
  if (flag_tenants > 0) {
    RowConfig row;
    row.tenants = flag_tenants;
    row.ticks = flag_ticks;
    row.batch = flag_batch;
    row.clients = static_cast<int>(flag_clients);
    row.rate = flag_rate;
    rows.push_back(row);
  } else {
    // Default sweep: burst capacity at increasing fleet sizes, then the
    // paced acceptance row (1000 tenants at 10 ticks/sec/tenant).
    for (const int64_t tenants : {256, 1000, 4096, 10000}) {
      RowConfig row;
      row.tenants = tenants;
      row.ticks = flag_ticks;
      row.batch = flag_batch;
      row.clients = static_cast<int>(flag_clients);
      rows.push_back(row);
    }
    RowConfig paced;
    paced.tenants = 1000;
    paced.ticks = 30;
    paced.batch = flag_batch;
    paced.clients = static_cast<int>(flag_clients);
    paced.rate = 10.0;
    rows.push_back(paced);
  }

  bench::PrintHeader("multi-tenant serving: append-to-ack latency and "
                     "sustained throughput");
  std::printf("%8s %6s %6s %8s %5s | %9s %9s %9s %11s %9s\n", "tenants",
              "ticks", "batch", "rate", "cli", "wall_s", "p50_ms", "p99_ms",
              "ticks/s", "rejected");
  bool ok = true;
  for (const RowConfig& row : rows) {
    const RowResult result =
        RunRow(row, static_cast<int>(readers), max_hot);
    const char* mode = row.rate > 0 ? "paced" : "burst";
    std::printf("%8lld %6lld %6lld %8.1f %5d | %9.3f %9.3f %9.3f %11.0f "
                "%9lld\n",
                static_cast<long long>(row.tenants),
                static_cast<long long>(row.ticks),
                static_cast<long long>(row.batch), row.rate, row.clients,
                result.wall_seconds, result.p50_ms, result.p99_ms,
                result.ticks_per_sec,
                static_cast<long long>(result.rejected));
    json.AddServe(row.tenants, mode, row.rate, row.clients, row.batch,
                  result.wall_seconds, result.p50_ms, result.p99_ms,
                  result.ticks_per_sec, result.ticks_total, result.rejected,
                  result.faults, result.evictions);
    if (check) {
      if (result.p99_ms <= 0.0) {
        std::fprintf(stderr, "CHECK FAILED: no p99 reported\n");
        ok = false;
      }
      if (row.rate > 0) {
        // Keeping pace: the ideal wall clock is ticks/rate; falling more
        // than 25% behind means the daemon cannot sustain the target.
        const double ideal =
            static_cast<double>(row.ticks) / row.rate;
        if (result.wall_seconds > ideal * 1.25) {
          std::fprintf(stderr,
                       "CHECK FAILED: paced row fell behind: wall %.2fs vs "
                       "ideal %.2fs (+25%% budget)\n",
                       result.wall_seconds, ideal);
          ok = false;
        }
      }
      if (max_p99_ms > 0 && result.p99_ms > max_p99_ms) {
        std::fprintf(stderr,
                     "CHECK FAILED: p99 %.3fms over budget %.3fms\n",
                     result.p99_ms, max_p99_ms);
        ok = false;
      }
    }
  }
  json.Flush();
  if (check && ok) std::printf("check: OK\n");
  return ok ? 0 : 1;
}
