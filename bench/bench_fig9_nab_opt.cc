// Regenerates Figure 9 of the paper (§VI): NAB vs NAB-opt on the Job-Log
// data, fail intervals, as a function of eps.
//
// Plain NAB tests lengths floor((1+eps)^h) for every level h, so for small
// eps it retests the same small lengths many times ((1+eps)^h needs
// h ~ (1/eps) log(1/eps) levels before the increments even reach 1).
// NAB-opt advances the length recursively (len = max(len+1,
// floor((1+eps) len))), visiting each length once. The gap in interval
// tests — and runtime — grows as eps shrinks.

#include <cmath>

#include "bench/bench_util.h"
#include "datagen/job_log.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const int64_t n = bench::IntFlag(argc, argv, "n", 150000);
  const double c_hat = bench::DoubleFlag(argc, argv, "c_hat", 0.1);
  const double min_eps = bench::DoubleFlag(argc, argv, "min_eps", 0.003);

  datagen::JobLogParams params;
  params.num_ticks = n;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(params);
  const series::CumulativeSeries cumulative(jobs.counts);

  bench::PrintHeader("Figure 9: NAB vs NAB-opt, fail intervals, eps sweep");
  std::printf("n = %lld (paper used 1,138,293; pass --n= to scale up)\n\n",
              static_cast<long long>(n));
  io::TablePrinter table({"eps", "NAB tests", "NAB-opt tests", "test ratio",
                          "NAB sec", "NAB-opt sec", "time ratio"});

  for (double eps = 0.1; eps >= min_eps * 0.999; eps /= std::sqrt(10.0)) {
    interval::GeneratorOptions options;
    options.type = core::TableauType::kFail;
    options.c_hat = c_hat;
    options.epsilon = eps;

    const auto nab = bench::RunGenerator(
        cumulative, core::ConfidenceModel::kBalance,
        interval::AlgorithmKind::kNonAreaBased, options);
    const auto nab_opt = bench::RunGenerator(
        cumulative, core::ConfidenceModel::kBalance,
        interval::AlgorithmKind::kNonAreaBasedOpt, options);

    table.AddRow(
        {util::StrFormat("%.4f", eps),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     nab.stats.intervals_tested)),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     nab_opt.stats.intervals_tested)),
         util::StrFormat("%.2f",
                         static_cast<double>(nab.stats.intervals_tested) /
                             static_cast<double>(
                                 nab_opt.stats.intervals_tested)),
         util::StrFormat("%.3f", nab.stats.seconds),
         util::StrFormat("%.3f", nab_opt.stats.seconds),
         util::StrFormat("%.2f", nab.stats.seconds /
                                     std::max(nab_opt.stats.seconds, 1e-9))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reading: the NAB/NAB-opt gap widens as eps decreases — the "
              "duplicate-length overhead NAB pays is Theta((1/eps) "
              "log(1/eps)) per anchor.\n");
  return 0;
}
