// Parallel scaling of anchor-sharded candidate generation.
//
// Sweeps num_threads over 1, 2, 4, ... --max_threads on a synthetic
// Job-Log stream (default n = 1M) and reports wall-clock time, total work
// time, and speedup vs the sequential run for the area-based and NAB-opt
// generators. Candidate output is asserted identical across thread counts —
// sharding is an execution strategy, not an approximation.
//
// With --json=<path>, per-run records {bench, n, algorithm, model, threads,
// seconds, intervals_tested} plus the scheduler observability block
// {speedup, work_seconds, shards, chunks, imbalance, min/median/max
// shard seconds, steals, chunks_claimed[]} are written for regression
// tracking (compare two files with tools/bench_diff.py):
//   bench_parallel_scaling --json=BENCH_parallel.json

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/job_log.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const int64_t n = bench::IntFlag(argc, argv, "n", 1000000);
  const double epsilon = bench::DoubleFlag(argc, argv, "epsilon", 0.01);
  const int64_t max_threads = bench::IntFlag(argc, argv, "max_threads", 8);
  bench::BenchJson json =
      bench::BenchJson::FromArgs(argc, argv, "parallel_scaling");

  bench::PrintHeader("parallel anchor-sharded generation, Job-Log synthetic");
  datagen::JobLogParams params;
  params.num_ticks = n;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(params);
  const series::CumulativeSeries cumulative(jobs.counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  // Slightly above the whole-data confidence so no single interval spans
  // everything and the full anchor sweep runs (as in Fig. 6).
  const double hold_c_hat =
      std::min(1.0, *eval.Confidence(1, n) * 1.000001 + 1e-9);
  std::printf("n = %lld, eps = %g, whole-data confidence = %.6f\n",
              static_cast<long long>(n), epsilon, *eval.Confidence(1, n));

  struct Config {
    interval::AlgorithmKind kind;
    core::TableauType type;
  };
  const Config configs[] = {
      {interval::AlgorithmKind::kAreaBased, core::TableauType::kHold},
      {interval::AlgorithmKind::kAreaBased, core::TableauType::kFail},
      {interval::AlgorithmKind::kNonAreaBasedOpt, core::TableauType::kHold},
  };

  io::TablePrinter table({"algorithm", "type", "threads", "wall s", "work s",
                          "speedup", "imbalance", "steals",
                          "intervals tested", "identical"});
  bool all_identical = true;
  for (const Config& config : configs) {
    interval::GeneratorOptions options;
    options.type = config.type;
    options.c_hat = config.type == core::TableauType::kHold
                        ? hold_c_hat
                        : std::max(0.0, *eval.Confidence(1, n) * 0.999);
    options.epsilon = epsilon;

    std::vector<interval::Interval> baseline;
    double baseline_wall = 0.0;
    for (int64_t threads = 1; threads <= std::max<int64_t>(1, max_threads);
         threads *= 2) {
      options.num_threads = static_cast<int>(threads);
      const auto run = bench::RunGenerator(
          cumulative, core::ConfidenceModel::kBalance, config.kind, options);
      const bool identical =
          threads == 1 || run.candidates == baseline;
      if (threads == 1) {
        baseline = run.candidates;
        baseline_wall = run.stats.wall_seconds;
      }
      all_identical = all_identical && identical;
      const double speedup = run.stats.wall_seconds > 0.0
                                 ? baseline_wall / run.stats.wall_seconds
                                 : 0.0;
      table.AddRow(
          {interval::AlgorithmKindName(config.kind),
           config.type == core::TableauType::kHold ? "hold" : "fail",
           util::StrFormat("%lld", static_cast<long long>(threads)),
           util::StrFormat("%.3f", run.stats.wall_seconds),
           util::StrFormat("%.3f", run.stats.seconds),
           util::StrFormat("%.2fx", speedup),
           util::StrFormat("%.2f", run.stats.ImbalanceRatio()),
           util::StrFormat("%llu", static_cast<unsigned long long>(
                                       run.stats.TotalSteals())),
           util::StrFormat("%llu", static_cast<unsigned long long>(
                                       run.stats.intervals_tested)),
           identical ? "yes" : "NO"});
      json.AddParallel(n, interval::AlgorithmKindName(config.kind),
                       config.type == core::TableauType::kHold
                           ? "balance/hold"
                           : "balance/fail",
                       static_cast<int>(threads), speedup, run.stats);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  json.Flush();

  if (!all_identical) {
    std::printf("ERROR: sharded output diverged from the sequential run\n");
    return 1;
  }
  std::printf(
      "reading: candidates are identical at every thread count; wall time "
      "shrinks with threads (speedup bounded by physical cores — this "
      "machine reports %u).\n",
      std::thread::hardware_concurrency());
  return 0;
}
