// Regenerates Figure 7 of the paper (§VI): area-based (AB) vs non
// area-based (NAB) hold-interval generation on Job-Log prefixes with
// c_hat = 0.99999 and eps = 0.01.
//
// Because the whole prefix has confidence above c_hat/(1+eps), both
// algorithms select [1, n] from their first anchor and stop
// (stop_on_full_cover): AB tests ~log_{1+eps}(area_B(1,n)/Delta) intervals,
// NAB ~log_{1+eps}(n). The paper's observation: the test-count ratio tracks
// log(area_B) / log(n) (1.49 at n = 100K, 1.84 at 500K on its trace), while
// the runtime gap grows somewhat faster.

#include <cmath>

#include "bench/bench_util.h"
#include "datagen/job_log.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const int64_t max_n = bench::IntFlag(argc, argv, "n", 500000);
  const double eps = bench::DoubleFlag(argc, argv, "eps", 0.01);

  datagen::JobLogParams params;
  params.num_ticks = max_n;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(params);

  bench::PrintHeader("Figure 7: AB vs NAB, hold intervals, c_hat = 0.99999");
  io::TablePrinter table({"n", "AB tests", "NAB tests", "test ratio",
                          "log(areaB)/log(n)", "AB ptr steps", "AB sec",
                          "NAB sec", "time ratio"});

  for (int64_t n = max_n / 5; n <= max_n; n += max_n / 5) {
    const series::CountSequence prefix = jobs.counts.Prefix(n);
    const series::CumulativeSeries cumulative(prefix);

    interval::GeneratorOptions options;
    options.type = core::TableauType::kHold;
    options.c_hat = 0.99999;
    options.epsilon = eps;
    options.delta_mode = interval::DeltaMode::kOne;  // as in the paper's impl
    options.stop_on_full_cover = true;

    const auto ab = bench::RunGenerator(cumulative,
                                        core::ConfidenceModel::kBalance,
                                        interval::AlgorithmKind::kAreaBased,
                                        options);
    const auto nab = bench::RunGenerator(
        cumulative, core::ConfidenceModel::kBalance,
        interval::AlgorithmKind::kNonAreaBased, options);

    const double area_b = cumulative.SumB(1, n);
    const double predicted =
        std::log(area_b) / std::log(static_cast<double>(n));
    table.AddRow(
        {util::StrFormat("%lld", static_cast<long long>(n)),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     ab.stats.intervals_tested)),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     nab.stats.intervals_tested)),
         util::StrFormat("%.2f",
                         static_cast<double>(ab.stats.intervals_tested) /
                             static_cast<double>(nab.stats.intervals_tested)),
         util::StrFormat("%.2f", predicted),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     ab.stats.endpoint_steps)),
         util::StrFormat("%.4f", ab.stats.seconds),
         util::StrFormat("%.4f", nab.stats.seconds),
         util::StrFormat("%.2f", ab.stats.seconds /
                                     std::max(nab.stats.seconds, 1e-9))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reading: both algorithms resolve from a single anchor; the "
              "AB/NAB test ratio tracks log(area_B)/log(n), as predicted by "
              "the analysis. AB's runtime additionally pays the per-level "
              "pointer walk (its O(n)-amortized cost concentrates on the "
              "single anchor here), so its time gap exceeds its test-count "
              "gap — the paper saw the same direction ('the gap in running "
              "time appears to grow at a faster rate').\n");
  return 0;
}
