// Regenerates the paper's qualitative comparison against Optimized Support
// Rules (Fukuda et al. [9]) across §IV:
//   * credit-card (§IV.A): OSR's instantaneous-sum metric finds only
//     degenerate early intervals; its zero-baseline cumulative metric only
//     flags the start of the sequence (later intervals get artificially
//     high ratios because the fixed baseline ignores interval starts);
//   * people-count (§IV.B): OSR intervals rarely align with the scheduled
//     events, because summing counts cannot model delay;
//   * CR fail tableaux, for contrast, on the same data.

#include <algorithm>

#include "bench/bench_util.h"
#include "core/conservation_rule.h"
#include "datagen/credit_card.h"
#include "datagen/people_count.h"
#include "io/timeline.h"
#include "mining/support_rules.h"
#include "util/string_util.h"

namespace {

using namespace conservation;

void PrintMined(const char* label,
                const std::vector<mining::MinedInterval>& mined,
                size_t max_rows = 6) {
  std::printf("%s: %zu maximal interval(s)\n", label, mined.size());
  size_t shown = 0;
  for (const auto& m : mined) {
    if (++shown > max_rows) {
      std::printf("    ...\n");
      break;
    }
    std::printf("    %-14s ratio=%.3f  (length %lld)\n",
                m.interval.ToString().c_str(), m.ratio,
                static_cast<long long>(m.interval.length()));
  }
}

}  // namespace

int main(int, char**) {
  bench::PrintHeader("OSR vs conservation rules: credit-card data");
  const datagen::CreditCardData credit = datagen::GenerateCreditCard();
  const io::MonthTimeline months(credit.params.start_year, 1);

  for (const auto metric : {mining::RatioMetric::kInstantaneousSum,
                            mining::RatioMetric::kZeroBaselineArea}) {
    for (const double c_hat : {0.8, 0.9}) {
      mining::SupportRulesOptions options;
      options.metric = metric;
      options.type = core::TableauType::kFail;
      options.c_hat = c_hat;
      const auto mined = mining::MineMaximalIntervals(credit.counts, options);
      PrintMined(util::StrFormat("  OSR %s, fail ratio <= %.1f",
                                 mining::RatioMetricName(metric), c_hat)
                     .c_str(),
                 mined);
      // How many reported intervals start in a holiday month?
      int holiday = 0;
      for (const auto& m : mined) {
        const int month = months.MonthOf(m.interval.begin);
        if (month == 11 || month == 12) ++holiday;
      }
      std::printf("    -> %d of %zu start in Nov/Dec\n", holiday,
                  mined.size());
    }
  }
  {
    auto rule = core::ConservationRule::Create(credit.counts);
    core::TableauRequest request;
    request.type = core::TableauType::kFail;
    request.c_hat = 0.7;
    request.s_hat = 0.04;
    auto tableau = rule->DiscoverTableau(request);
    int holiday = 0;
    for (const auto& row : tableau->rows) {
      const int month = months.MonthOf(row.interval.begin);
      if (month == 11 || month == 12) ++holiday;
    }
    std::printf("  CR balance fail tableau: %zu intervals, %d start in "
                "Nov/Dec (paper: CRs find the holiday pattern, OSR does "
                "not)\n\n",
                tableau->size(), holiday);
  }

  bench::PrintHeader("OSR vs conservation rules: people-count data");
  const datagen::PeopleCountData people = datagen::GeneratePeopleCount();
  int osr_matched = 0;
  int cr_matched = 0;
  {
    mining::SupportRulesOptions options;
    options.metric = mining::RatioMetric::kInstantaneousSum;
    options.type = core::TableauType::kFail;
    options.c_hat = 0.6;
    options.min_length = 2;
    const auto mined = mining::MineMaximalIntervals(people.counts, options);
    for (const datagen::BuildingEvent& event : people.events) {
      const interval::Interval range{event.BeginTick(), event.EndTick()};
      for (const auto& m : mined) {
        if (m.interval.Overlaps(range) && m.interval.length() < 96) {
          ++osr_matched;
          break;
        }
      }
    }
    // The paper's qualitative critique: OSR intervals "extended into the
    // following day and almost all days included intervals at odd hours".
    int crossing_midnight = 0;
    int at_odd_hours = 0;
    const io::SlotTimeline slots(people.params.slots_per_day);
    for (const auto& m : mined) {
      if (slots.DayOf(m.interval.begin) != slots.DayOf(m.interval.end)) {
        ++crossing_midnight;
      }
      const int begin_slot = slots.SlotOf(m.interval.begin);
      if (begin_slot < 12 || begin_slot > 44) ++at_odd_hours;  // <6:00/>22:00
    }
    std::printf("  OSR instantaneous fail <= 0.6: %zu intervals; events "
                "overlapped by a day-scale interval: %d / %zu\n"
                "    of the OSR intervals, %d cross midnight and %d start "
                "at odd hours (paper: same artifacts)\n",
                mined.size(), osr_matched, people.events.size(),
                crossing_midnight, at_odd_hours);
  }
  {
    auto rule = core::ConservationRule::Create(people.counts);
    const core::ConfidenceEvaluator eval =
        rule->Evaluator(core::ConfidenceModel::kCredit);
    interval::GeneratorOptions options;
    options.type = core::TableauType::kFail;
    options.c_hat = 0.6;
    options.epsilon = 0.01;
    const auto generator =
        interval::MakeGenerator(interval::AlgorithmKind::kAreaBased);
    const auto candidates = generator->Generate(eval, options, nullptr);
    for (const datagen::BuildingEvent& event : people.events) {
      const interval::Interval range{event.BeginTick(), event.EndTick()};
      for (const auto& iv : candidates) {
        if (iv.Overlaps(range)) {
          ++cr_matched;
          break;
        }
      }
    }
    std::printf("  CR credit fail <= 0.6: events overlapped: %d / %zu\n",
                cr_matched, people.events.size());
  }
  std::printf("\nreading: conservation-rule confidence (interval-dependent "
              "baseline + delay semantics) aligns with ground-truth events; "
              "fixed-baseline ratio metrics do not.\n");
  return 0;
}
