// Regenerates Table I of the paper (§IV.B, credit-model example): scheduled
// building events on the left, the maximal credit-model fail intervals
// (c_hat = 0.6) from the same days on the right.
//
// Also reports the paper's two side observations: lunchtime intervals on
// event-free days, and why the balance model is unusable here (accrued
// side-exit imbalance).

#include <algorithm>
#include <map>

#include "bench/bench_util.h"
#include "core/segmentation.h"
#include "core/conservation_rule.h"
#include "datagen/people_count.h"
#include "io/table_printer.h"
#include "io/timeline.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const double c_hat = bench::DoubleFlag(argc, argv, "c_hat", 0.6);

  const datagen::PeopleCountData data = datagen::GeneratePeopleCount();
  const io::SlotTimeline timeline(data.params.slots_per_day);
  auto rule = core::ConservationRule::Create(data.counts);
  if (!rule.ok()) return 1;

  bench::PrintHeader("Table I: events vs credit-model fail intervals");
  std::printf("n = %lld half-hour slots over %d weeks; %d scheduled events\n",
              static_cast<long long>(rule->n()), data.params.num_weeks,
              data.params.num_events);

  // Candidate maximal fail intervals (the paper reports per-day maximal
  // intervals, not a coverage-constrained tableau).
  const core::ConfidenceEvaluator eval =
      rule->Evaluator(core::ConfidenceModel::kCredit);
  interval::GeneratorOptions options;
  options.type = core::TableauType::kFail;
  options.c_hat = c_hat;
  options.epsilon = 0.01;
  const auto generator =
      interval::MakeGenerator(interval::AlgorithmKind::kAreaBased);
  const std::vector<interval::Interval> candidates =
      generator->Generate(eval, options, nullptr);

  // Bucket candidates by day, keeping only day-local maximal ones.
  std::map<int, std::vector<interval::Interval>> by_day;
  for (const core::Segment& segment : core::UniformSegments(
           rule->n(), data.params.slots_per_day)) {
    const int day = timeline.DayOf(segment.range.begin);
    by_day[day] = core::SegmentLocalMaximal(candidates, segment.range);
  }

  io::TablePrinter table(
      {"Event date and time", "Tableau interval(s) from the same day"});
  int matched = 0;
  for (const datagen::BuildingEvent& event : data.events) {
    std::vector<std::string> hits;
    const interval::Interval event_range{event.BeginTick(), event.EndTick()};
    for (const interval::Interval& iv : by_day[event.day]) {
      hits.push_back(util::StrFormat(
          "%s-%s", timeline.TimeOfSlot(timeline.SlotOf(iv.begin)).c_str(),
          timeline.TimeOfSlot(timeline.SlotOf(iv.end)).c_str()));
      if (iv.Overlaps(event_range)) ++matched;
    }
    table.AddRow({util::StrFormat(
                      "day %03d, %s-%s (%d people)", event.day,
                      timeline.TimeOfSlot(event.start_slot).c_str(),
                      timeline.TimeOfSlot(event.end_slot).c_str(),
                      event.attendance),
                  hits.empty() ? "-" : util::Join(hits, ", ")});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("events with an overlapping same-day interval: %d / %d\n\n",
              std::min(matched, data.params.num_events),
              data.params.num_events);

  // Paper: "we examined the maximal intervals on other days ... either no
  // intervals were returned, or some intervals in between 11:30 and 15:00".
  int event_free_days_with_intervals = 0;
  int of_which_lunchtime = 0;
  std::map<int, bool> is_event_day;
  for (const datagen::BuildingEvent& event : data.events) {
    is_event_day[event.day] = true;
  }
  for (const auto& [day, bucket] : by_day) {
    if (is_event_day.count(day) > 0 || bucket.empty()) continue;
    ++event_free_days_with_intervals;
    for (const interval::Interval& iv : bucket) {
      const int begin_slot = timeline.SlotOf(iv.begin);
      const int end_slot = timeline.SlotOf(iv.end);
      if (begin_slot >= 21 && end_slot <= 32) {  // 10:30 - 16:00
        ++of_which_lunchtime;
        break;
      }
    }
  }
  std::printf("event-free days with day-local fail intervals: %d "
              "(%d of them lunchtime-located)\n\n",
              event_free_days_with_intervals, of_which_lunchtime);

  // Why the credit model: balance confidence of the last week collapses
  // under the accrued side-exit imbalance, credit holds.
  const int64_t n = rule->n();
  const int64_t last_week = n - 48 * 7 + 1;
  std::printf("last-week confidence: balance=%.3f credit=%.3f "
              "(paper: balance unusable due to accrued imbalance)\n",
              *rule->Confidence(core::ConfidenceModel::kBalance, last_week, n),
              *rule->Confidence(core::ConfidenceModel::kCredit, last_week, n));
  return 0;
}
