// Regenerates Figure 3 of the paper (§IV.A, balance-model example):
//   left   — the fail tableau over the credit-card data (month ranges);
//   middle — December charges vs payments per year;
//   right  — January charges vs payments per year.
//
// Paper threshold: c_hat = 0.8 on the RBNZ data. Our synthetic levels sit
// slightly lower (Nov-Dec confidence ~0.65, clean Oct-Dec envelope ~0.79),
// so the default threshold is 0.7; pass --c_hat=... to sweep.

#include "bench/bench_util.h"
#include "core/conservation_rule.h"
#include "datagen/credit_card.h"
#include "io/table_printer.h"
#include "io/timeline.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const double c_hat = bench::DoubleFlag(argc, argv, "c_hat", 0.7);

  const datagen::CreditCardData data = datagen::GenerateCreditCard();
  const io::MonthTimeline timeline(data.params.start_year, 1);
  auto rule = core::ConservationRule::Create(data.counts);
  if (!rule.ok()) return 1;

  bench::PrintHeader("Figure 3 (left): fail tableau, balance model");
  std::printf("n = %lld months, overall confidence = %.4f "
              "(whole sequence is in the hold tableau)\n",
              static_cast<long long>(rule->n()),
              *rule->OverallConfidence(core::ConfidenceModel::kBalance));

  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kBalance;
  request.c_hat = c_hat;
  request.s_hat = 0.04;
  request.epsilon = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  if (!tableau.ok()) return 1;

  io::TablePrinter left({"Month", "Year", "confidence"});
  for (const core::TableauRow& row : tableau->rows) {
    const int begin_month = timeline.MonthOf(row.interval.begin);
    const int end_month = timeline.MonthOf(row.interval.end);
    static constexpr const char* kNames[] = {"Jan", "Feb", "Mar", "Apr",
                                             "May", "Jun", "Jul", "Aug",
                                             "Sep", "Oct", "Nov", "Dec"};
    left.AddRow({util::StrFormat("%s-%s", kNames[begin_month - 1],
                                 kNames[end_month - 1]),
                 util::StrFormat("%d", timeline.YearOf(row.interval.end)),
                 util::StrFormat("%.3f", row.confidence)});
  }
  std::printf("fail tableau (c_hat = %.2f):\n%s\n", c_hat,
              left.ToString().c_str());

  bench::PrintHeader("Figure 3 (middle): December charges vs payments");
  io::TablePrinter middle({"year", "charges", "payments"});
  bench::PrintHeader("Figure 3 (right): January charges vs payments");
  io::TablePrinter right({"year", "charges", "payments"});
  for (int year = data.params.start_year; year <= 2008; ++year) {
    const int64_t dec = timeline.TickOf(year, 12);
    if (dec >= 1 && dec <= rule->n()) {
      middle.AddRow({util::StrFormat("%d", year),
                     util::StrFormat("%.0f", data.counts.b(dec)),
                     util::StrFormat("%.0f", data.counts.a(dec))});
    }
    const int64_t jan = timeline.TickOf(year, 1);
    if (jan >= 1 && jan <= rule->n()) {
      right.AddRow({util::StrFormat("%d", year),
                    util::StrFormat("%.0f", data.counts.b(jan)),
                    util::StrFormat("%.0f", data.counts.a(jan))});
    }
  }
  std::printf("December (charges dominate payments, esp. late years):\n%s\n",
              middle.ToString().c_str());
  std::printf("January (payments dominate charges):\n%s\n",
              right.ToString().c_str());

  // Sanity summary the paper calls out in prose.
  int recent = 0;
  int early = 0;
  bool has_2008 = false;
  const io::MonthTimeline tl(data.params.start_year, 1);
  for (const core::TableauRow& row : tableau->rows) {
    const int year = tl.YearOf(row.interval.begin);
    (year >= 1996 ? recent : early) += 1;
    if (year == 2008 && (tl.MonthOf(row.interval.begin) == 11 ||
                         tl.MonthOf(row.interval.begin) == 12)) {
      has_2008 = true;
    }
  }
  std::printf("summary: %d intervals in 1996+, %d before; Nov-Dec 2008 "
              "reported: %s (paper: absent, recession)\n",
              recent, early, has_2008 ? "YES (unexpected)" : "no");
  return 0;
}
