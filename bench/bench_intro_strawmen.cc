// Regenerates the paper's §I.B motivation: why pointwise divergence and
// fixed-length sliding windows are the wrong tools.
//
//   * False negative for pointwise divergence: a violation that builds up
//     slowly — each tick diverges a little, so no single tick ranks high,
//     but the accumulated imbalance is large. The CR fail tableau reports
//     the buildup interval.
//   * False positive for sliding windows: "a large number of inbound
//     packets at the end of a sliding window whose outbound packets show up
//     in the next time interval" — huge window divergence, nothing actually
//     wrong. The CR confidence of the flagged window stays high.

#include <cmath>

#include "bench/bench_util.h"
#include "core/conservation_rule.h"
#include "core/diagnose.h"
#include "mining/divergence.h"
#include "util/random.h"
#include "util/string_util.h"

int main() {
  using namespace conservation;

  bench::PrintHeader("§I.B strawman 1: slow buildup (pointwise misses it)");
  {
    // 600 ticks, noisy traffic ~100/tick with matched spikes of +-60; in
    // [200, 400] outbound quietly runs 4% short.
    util::Rng rng(7);
    std::vector<double> a;
    std::vector<double> b;
    double carry = 0.0;  // benign one-tick-delayed bursts
    for (int64_t t = 0; t < 600; ++t) {
      double in = 100.0 + rng.Normal(0.0, 8.0);
      in = std::max(in, 0.0);
      double out = in + carry;
      carry = 0.0;
      if (t % 37 == 0) {
        // A benign burst: 60 extra inbound now, its outbound one tick
        // later — a +-60 pointwise divergence that dwarfs the leak's
        // ~4/tick signal.
        in += 60.0;
        carry = 60.0;
      }
      if (t >= 200 && t < 400) out *= 0.96;  // the slow leak
      a.push_back(std::floor(out));
      b.push_back(std::floor(in));
    }
    auto rule = core::ConservationRule::Create(a, b);
    CR_CHECK(rule.ok());

    const auto top = mining::TopPointwiseDivergence(rule->counts(), 20);
    std::printf("top-20 pointwise divergences (tick: b-a):\n");
    int burst_ticks = 0;
    for (const auto& point : top) {
      // Burst ticks are t %% 37 == 0 (0-based) and their catch-up ticks.
      const bool burst =
          (point.tick - 1) % 37 == 0 || (point.tick - 2) % 37 == 0;
      burst_ticks += burst ? 1 : 0;
    }
    for (size_t k = 0; k < 4; ++k) {
      std::printf("  tick %3lld: %+5.0f\n",
                  static_cast<long long>(top[k].tick), top[k].divergence);
    }
    std::printf("  ... (all +-60-ish)\n");
    std::printf("-> %d of 20 are benign one-tick bursts; the leak's ~4/tick "
                "signal never ranks (the paper's false negative)\n",
                burst_ticks);

    core::TableauRequest request;
    request.type = core::TableauType::kFail;
    request.model = core::ConfidenceModel::kDebit;
    request.c_hat = 0.97;
    request.s_hat = 0.05;
    auto tableau = rule->DiscoverTableau(request);
    CR_CHECK(tableau.ok());
    std::printf("CR fail tableau (debit, c=0.97):\n");
    for (const core::TableauRow& row : tableau->rows) {
      std::printf("  %-14s conf=%.4f\n", row.interval.ToString().c_str(),
                  row.confidence);
    }
    std::printf("-> the tableau brackets the 200-tick buildup that no "
                "single tick reveals\n\n");
  }

  bench::PrintHeader(
      "§I.B strawman 2: window-boundary burst (sliding window cries wolf)");
  {
    // Steady matched traffic; at tick 96 a burst of 800 inbound arrives
    // whose outbound counterpart lands at tick 97 — one tick of delay.
    std::vector<double> a(200, 50.0);
    std::vector<double> b(200, 50.0);
    b[95] += 800.0;  // tick 96 inbound burst
    a[96] += 800.0;  // tick 97 outbound catch-up
    auto rule = core::ConservationRule::Create(a, b);
    CR_CHECK(rule.ok());

    const auto windows =
        mining::TopWindowDivergence(rule->counts(), 32, 3);
    std::printf("top sliding windows (length 32) by |sum b - sum a|:\n");
    for (const auto& window : windows) {
      const auto conf = rule->Confidence(core::ConfidenceModel::kBalance,
                                         window.window.begin,
                                         window.window.end);
      std::printf("  %-12s divergence=%+6.0f   CR confidence=%.4f\n",
                  window.window.ToString().c_str(), window.divergence,
                  conf.value_or(-1.0));
    }

    core::TableauRequest request;
    request.type = core::TableauType::kFail;
    request.c_hat = 0.5;
    request.s_hat = 0.02;
    auto tableau = rule->DiscoverTableau(request);
    CR_CHECK(tableau.ok());
    std::printf("CR fail tableau (balance, c=0.5): %zu interval(s) — "
                "coverage %lld tick(s)\n",
                tableau->size(), static_cast<long long>(tableau->covered));
    if (!tableau->rows.empty()) {
      const auto diagnoses = core::DiagnoseTableau(*rule, *tableau);
      for (const auto& diagnosis : diagnoses) {
        std::printf("  %s\n", diagnosis.ToString().c_str());
      }
    }
    std::printf("-> the burst tops the window-divergence ranking, but its "
                "CR confidence stays high (the mass returns one tick "
                "later); any reported interval is classified as delay, "
                "not loss\n");
  }
  return 0;
}
