// bench_cover_scaling: cover-phase scaling of the lazy-greedy (CELF-style)
// GreedyPartialSetCover against the preserved naive reference
// (tests/reference_cover.h). Not a paper figure — this tracks the phase-2
// rewrite the same way bench_parallel_scaling tracks phase 1.
//
// Three synthetic candidate families stress different parts of the lazy
// machinery:
//   shingles    overlapping fixed-length intervals (the generators' typical
//               output shape): many rounds, moderate staleness.
//   nested      chains of nested intervals: after each outer pick the whole
//               chain decays to zero gain, maximizing retirements.
//   duplicates  every distinct interval repeated 8x: duplicate copies must
//               pop, re-evaluate to zero, and retire without being chosen.
//
// Sweeps: n (with k scaled proportionally), k at fixed n, and a seeding
// thread sweep (the select loop is inherently sequential; only the initial
// gain computation parallelizes). Chosen sets are asserted identical between
// lazy and naive on every compared run, and across thread counts.
//
// Flags: --n=<max n> --k=<max candidates> --s_hat=<fraction>
//        --naive_max=<skip naive above this n> --max_threads=<seed sweep cap>
//        --json=<path>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cover/partial_set_cover.h"
#include "interval/interval.h"
#include "tests/reference_cover.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace {

using namespace conservation;
using interval::Interval;

std::vector<Interval> MakeShingles(int64_t n, int64_t k) {
  const int64_t stride = std::max<int64_t>(1, n / k);
  const int64_t length = std::min<int64_t>(n, 100 * stride);
  std::vector<Interval> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t b = 1; b <= n && static_cast<int64_t>(out.size()) < k;
       b += stride) {
    out.push_back(Interval{b, std::min<int64_t>(n, b + length - 1)});
  }
  return out;
}

std::vector<Interval> MakeNested(int64_t n, int64_t k) {
  // k/16 groups of 16 nested intervals each; greedy picks the outermost of
  // every group and the 15 inner ones decay to zero gain.
  const int64_t groups = std::max<int64_t>(1, k / 16);
  const int64_t width = std::max<int64_t>(32, n / groups);
  std::vector<Interval> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t g = 0; g * width < n; ++g) {
    const int64_t lo = 1 + g * width;
    const int64_t hi = std::min<int64_t>(n, lo + width - 1);
    for (int64_t d = 0; d < 16; ++d) {
      const int64_t begin = std::min<int64_t>(hi, lo + d * (width / 32));
      const int64_t end = std::max<int64_t>(begin, hi - d * (width / 32));
      out.push_back(Interval{begin, end});
      if (static_cast<int64_t>(out.size()) >= k) return out;
    }
  }
  return out;
}

std::vector<Interval> MakeDuplicates(int64_t n, int64_t k) {
  const int64_t distinct = std::max<int64_t>(1, k / 8);
  const int64_t stride = std::max<int64_t>(1, n / distinct);
  const int64_t length = std::min<int64_t>(n, 4 * stride);
  std::vector<Interval> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t b = 1; b <= n && static_cast<int64_t>(out.size()) < k;
       b += stride) {
    const Interval iv{b, std::min<int64_t>(n, b + length - 1)};
    for (int copy = 0; copy < 8; ++copy) {
      out.push_back(iv);
      if (static_cast<int64_t>(out.size()) >= k) break;
    }
  }
  return out;
}

struct Family {
  const char* name;
  std::vector<Interval> (*make)(int64_t n, int64_t k);
};

constexpr Family kFamilies[] = {
    {"shingles", MakeShingles},
    {"nested", MakeNested},
    {"duplicates", MakeDuplicates},
};

void ExpectSameChoice(const cover::CoverResult& a,
                      const cover::CoverResult& b, const char* what) {
  CR_CHECK(a.chosen == b.chosen);
  CR_CHECK(a.covered == b.covered);
  CR_CHECK(a.satisfied == b.satisfied);
  (void)what;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t max_n = bench::IntFlag(argc, argv, "n", 1000000);
  const int64_t max_k = bench::IntFlag(argc, argv, "k", 100000);
  const double s_hat = bench::DoubleFlag(argc, argv, "s_hat", 0.9);
  const int64_t naive_max = bench::IntFlag(argc, argv, "naive_max", max_n);
  const int64_t max_threads = bench::IntFlag(argc, argv, "max_threads", 4);
  bench::BenchJson json = bench::BenchJson::FromArgs(argc, argv, "cover");

  cover::CoverOptions options;
  options.s_hat = s_hat;
  options.deterministic_tie_break = true;

  bench::PrintHeader("cover-phase scaling: lazy heap + Fenwick vs naive scan");
  std::printf(
      "%-11s %9s %8s | %9s %9s %7s | %7s %9s %7s %11s\n", "family", "n", "k",
      "naive_s", "lazy_s", "speedup", "rounds", "pops", "stale", "tick_visits");

  // n sweep (k scales with n) then k sweep at the largest n.
  struct Config {
    int64_t n;
    int64_t k;
  };
  std::vector<Config> configs = {{max_n / 4, max_k / 4},
                                 {max_n / 2, max_k / 2},
                                 {max_n, max_k},
                                 {max_n, max_k / 10},
                                 {max_n, max_k / 3}};
  for (const Family& family : kFamilies) {
    for (const Config& config : configs) {
      const int64_t n = std::max<int64_t>(64, config.n);
      const std::vector<Interval> candidates =
          family.make(n, std::max<int64_t>(1, config.k));
      const int64_t k = static_cast<int64_t>(candidates.size());

      util::Stopwatch lazy_timer;
      const cover::CoverResult lazy =
          cover::GreedyPartialSetCover(candidates, n, options);
      const double lazy_seconds = lazy_timer.ElapsedSeconds();

      double naive_seconds = 0.0;
      double speedup = 0.0;
      if (n <= naive_max) {
        util::Stopwatch naive_timer;
        const cover::CoverResult naive =
            cover::ReferenceGreedyPartialSetCover(candidates, n, options);
        naive_seconds = naive_timer.ElapsedSeconds();
        ExpectSameChoice(lazy, naive, family.name);
        speedup = lazy_seconds > 0.0 ? naive_seconds / lazy_seconds : 0.0;
        json.AddCover(n, "naive", family.name, k, 1, naive_seconds, 0.0,
                      naive.stats);
      }
      json.AddCover(n, "lazy", family.name, k, 1, lazy_seconds, speedup,
                    lazy.stats);

      std::printf(
          "%-11s %9lld %8lld | %9.4f %9.4f %7.1f | %7lld %9lld %7lld %11lld\n",
          family.name, static_cast<long long>(n), static_cast<long long>(k),
          naive_seconds, lazy_seconds, speedup,
          static_cast<long long>(lazy.stats.rounds),
          static_cast<long long>(lazy.stats.heap_pops),
          static_cast<long long>(lazy.stats.stale_reevaluations),
          static_cast<long long>(lazy.stats.tick_visits));
    }
  }

  // Seeding thread sweep on the largest shingles instance: the select loop
  // is sequential by design, so only seed_seconds should move — and the
  // chosen set must not move at all.
  bench::PrintHeader("parallel seeding (shingles, largest instance)");
  std::printf("%8s | %10s %10s %9s\n", "threads", "seed_s", "select_s",
              "total_s");
  const std::vector<Interval> candidates = MakeShingles(max_n, max_k);
  cover::CoverResult baseline;
  for (int64_t threads = 1; threads <= max_threads; threads *= 2) {
    cover::CoverOptions threaded = options;
    threaded.num_threads = static_cast<int>(threads);
    util::Stopwatch timer;
    cover::CoverResult result =
        cover::GreedyPartialSetCover(candidates, max_n, threaded);
    const double total = timer.ElapsedSeconds();
    if (threads == 1) {
      baseline = result;
    } else {
      ExpectSameChoice(result, baseline, "threads");
    }
    json.AddCover(max_n, "lazy", "shingles_seed",
                  static_cast<int64_t>(candidates.size()),
                  static_cast<int>(threads), total, 0.0, result.stats);
    std::printf("%8lld | %10.4f %10.4f %9.4f\n",
                static_cast<long long>(threads), result.stats.seed_seconds,
                result.stats.select_seconds, total);
  }

  json.Flush();
  return 0;
}
