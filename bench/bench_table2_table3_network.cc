// Regenerates Tables II and III of the paper (§IV.C, debit-model example):
//   Table II  — fail tableau (c_hat = 0.5) across the router fleet: only the
//               routers with unmonitored links are flagged;
//   Table III — hold tableaux for Router-7 at c_hat = 0.99 and 0.9, showing
//               that its missing link started being monitored late in the
//               trace.
//
// Deviation from the paper: our Router-7 fail interval spans [1, n] rather
// than [1, 3610] because a 55% missing share keeps cumulative confidence
// below 0.5 even after the link activates; the activation tick is recovered
// by the hold tableau, which is the same diagnostic conclusion.

#include "bench/bench_util.h"
#include "core/conservation_rule.h"
#include "datagen/router.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const int num_clean =
      static_cast<int>(bench::IntFlag(argc, argv, "num_clean", 200));
  const int64_t num_ticks = bench::IntFlag(argc, argv, "n", 3800);

  const std::vector<datagen::RouterData> fleet =
      datagen::GenerateRouterFleet(num_clean, num_ticks, 20120402);

  bench::PrintHeader("Table II: fail tableau, debit model, c_hat = 0.5");
  std::printf("fleet: %zu routers (%d clean), %lld ticks each\n\n",
              fleet.size(), num_clean, static_cast<long long>(num_ticks));

  io::TablePrinter table2({"Router name", "Interval", "confidence"});
  int flagged_clean = 0;
  const datagen::RouterData* router7 = nullptr;
  for (const datagen::RouterData& router : fleet) {
    if (router.name == "Router-7") router7 = &router;
    auto rule = core::ConservationRule::Create(router.counts);
    if (!rule.ok()) return 1;
    core::TableauRequest request;
    request.type = core::TableauType::kFail;
    request.model = core::ConfidenceModel::kDebit;
    request.c_hat = 0.5;
    request.s_hat = 0.5;
    request.epsilon = 0.01;
    auto tableau = rule->DiscoverTableau(request);
    if (!tableau.ok()) return 1;
    if (!tableau->support_satisfied) continue;
    if (router.params.profile == datagen::RouterProfile::kClean) {
      ++flagged_clean;
    }
    for (const core::TableauRow& row : tableau->rows) {
      table2.AddRow({router.name,
                     util::StrFormat("%lld - %lld",
                                     static_cast<long long>(row.interval.begin),
                                     static_cast<long long>(row.interval.end)),
                     util::StrFormat("%.3f", row.confidence)});
    }
  }
  std::printf("%s\n", table2.ToString().c_str());
  std::printf("clean routers incorrectly flagged: %d / %d\n\n", flagged_clean,
              num_clean);

  bench::PrintHeader("Table III: hold tableaux for Router-7");
  if (router7 == nullptr) return 1;
  auto rule = core::ConservationRule::Create(router7->counts);
  if (!rule.ok()) return 1;
  std::printf("(hidden link activates at tick %lld)\n\n",
              static_cast<long long>(router7->params.activation_tick));
  for (const double c_hat : {0.99, 0.9}) {
    core::TableauRequest request;
    request.type = core::TableauType::kHold;
    request.model = core::ConfidenceModel::kDebit;
    request.c_hat = c_hat;
    request.s_hat = 0.04;
    // Tight eps: at 0.99 the paper's point is that only short lucky windows
    // qualify; a loose eps would re-admit longer intervals just below 0.99.
    request.epsilon = 0.001;
    auto tableau = rule->DiscoverTableau(request);
    if (!tableau.ok()) return 1;
    std::printf("confidence above %.2f:\n", c_hat);
    for (const core::TableauRow& row : tableau->rows) {
      std::printf("  %lld - %lld   (conf %.4f)\n",
                  static_cast<long long>(row.interval.begin),
                  static_cast<long long>(row.interval.end), row.confidence);
    }
    std::printf("\n");
  }
  std::printf("paper's reading: only short/late ranges exceed 0.99 (small "
              "violations are normal); c_hat = 0.9 yields a longer interval "
              "starting near the activation tick.\n");
  return 0;
}
