// Regenerates the result-set comparison opening §VI of the paper: do the
// area-based and non-area-based algorithms, which test different interval
// families (left- vs right-anchored), report the same intervals?
//
// Paper: on the credit-card data the interval sets were identical at
// eps = 0.01; on the TCP trace most intervals matched exactly and the rest
// overlapped considerably, with AB starting intervals at smaller i.

#include "bench/bench_util.h"
#include "interval/compare.h"
#include "datagen/credit_card.h"
#include "datagen/tcp_trace.h"
#include "util/string_util.h"

namespace {

using namespace conservation;

void Report(const char* dataset, const series::CountSequence& counts,
            core::TableauType type, double c_hat, double eps) {
  const series::CumulativeSeries cumulative(counts);
  interval::GeneratorOptions options;
  options.type = type;
  options.c_hat = c_hat;
  options.epsilon = eps;
  const auto ab =
      bench::RunGenerator(cumulative, core::ConfidenceModel::kBalance,
                          interval::AlgorithmKind::kAreaBased, options);
  const auto nab =
      bench::RunGenerator(cumulative, core::ConfidenceModel::kBalance,
                          interval::AlgorithmKind::kNonAreaBased, options);
  const interval::SetComparison agreement =
      interval::CompareIntervalSets(ab.candidates, nab.candidates);
  std::printf("%-12s %s c=%.2f eps=%g: AB %zu / NAB %zu candidates; "
              "%zu identical, %zu overlapping (mean overlap %.2f), "
              "coverage agreement %.3f\n",
              dataset, core::TableauTypeName(type), c_hat, eps,
              agreement.lhs_total, agreement.rhs_total, agreement.identical,
              agreement.overlapping, agreement.mean_jaccard,
              agreement.coverage_jaccard);
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t tcp_n = bench::IntFlag(argc, argv, "tcp_n", 40000);

  bench::PrintHeader("§VI opening: AB vs NAB result-set agreement");
  const datagen::CreditCardData credit = datagen::GenerateCreditCard();
  Report("credit-card", credit.counts, core::TableauType::kFail, 0.7, 0.01);
  Report("credit-card", credit.counts, core::TableauType::kHold, 0.9, 0.01);

  datagen::TcpTraceParams tcp_params;
  tcp_params.num_ticks = tcp_n;
  const datagen::TcpTraceData tcp = datagen::GenerateTcpTrace(tcp_params);
  Report("tcp-trace", tcp.counts, core::TableauType::kFail, 0.5, 0.01);
  Report("tcp-trace", tcp.counts, core::TableauType::kHold, 0.95, 0.01);

  std::printf("\nreading: most intervals coincide; where they differ, the "
              "pairs overlap considerably (AB anchors at left endpoints and "
              "so tends to start earlier).\n");
  return 0;
}
