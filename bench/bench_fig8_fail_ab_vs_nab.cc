// Regenerates Figure 8 of the paper (§VI): area-based (AB) vs non
// area-based (NAB) *fail*-interval generation on Job-Log prefixes with
// c_hat = 0.1 and eps = 0.01.
//
// Unlike Figure 7, no single interval resolves the problem: AB sweeps all
// left anchors against area_A levels (test count ~ sum_i log(area_A(i,n))),
// NAB sweeps all right anchors against length levels (~ sum_j log(j)), so
// AB tests substantially more intervals and the gap does not taper off with
// n — the paper's motivation for the NAB family.

#include "bench/bench_util.h"
#include "datagen/job_log.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const int64_t max_n = bench::IntFlag(argc, argv, "n", 100000);
  const double eps = bench::DoubleFlag(argc, argv, "eps", 0.01);
  const double c_hat = bench::DoubleFlag(argc, argv, "c_hat", 0.1);

  datagen::JobLogParams params;
  params.num_ticks = max_n;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(params);

  bench::PrintHeader("Figure 8: AB vs NAB, fail intervals, c_hat = 0.1");
  io::TablePrinter table({"n", "AB tests", "NAB tests", "test ratio",
                          "AB candidates", "NAB candidates", "AB sec",
                          "NAB sec"});

  for (int64_t n = max_n / 5; n <= max_n; n += max_n / 5) {
    const series::CountSequence prefix = jobs.counts.Prefix(n);
    const series::CumulativeSeries cumulative(prefix);

    interval::GeneratorOptions options;
    options.type = core::TableauType::kFail;
    options.c_hat = c_hat;
    options.epsilon = eps;
    options.delta_mode = interval::DeltaMode::kOne;

    const auto ab = bench::RunGenerator(cumulative,
                                        core::ConfidenceModel::kBalance,
                                        interval::AlgorithmKind::kAreaBased,
                                        options);
    const auto nab = bench::RunGenerator(
        cumulative, core::ConfidenceModel::kBalance,
        interval::AlgorithmKind::kNonAreaBased, options);

    table.AddRow(
        {util::StrFormat("%lld", static_cast<long long>(n)),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     ab.stats.intervals_tested)),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     nab.stats.intervals_tested)),
         util::StrFormat("%.2f",
                         static_cast<double>(ab.stats.intervals_tested) /
                             std::max<double>(
                                 1.0, static_cast<double>(
                                          nab.stats.intervals_tested))),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     ab.stats.candidates)),
         util::StrFormat("%llu", static_cast<unsigned long long>(
                                     nab.stats.candidates)),
         util::StrFormat("%.3f", ab.stats.seconds),
         util::StrFormat("%.3f", nab.stats.seconds)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reading: with every anchor active, AB's area-driven level "
              "count exceeds NAB's length-driven one at every n, and the "
              "gap persists as n grows.\n");
  return 0;
}
