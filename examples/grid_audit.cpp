// Smart-grid audit: the electricity scenario of the paper's introduction.
// A feeder's supplied energy (inbound) should match metered consumption
// (outbound) up to technical losses. Diverted energy ("theft") is a
// persistent conservation violation; a meter outage is a transient one.
// The debit model plus a rolling confidence profile separates the two.
//
// Run: ./build/examples/grid_audit

#include <cstdio>

#include "core/analysis.h"
#include "core/conservation_rule.h"
#include "datagen/power_grid.h"
#include "util/string_util.h"

namespace {

using namespace conservation;

void Audit(const char* label, const datagen::PowerGridData& data) {
  auto rule = core::ConservationRule::Create(data.counts);
  if (!rule.ok()) {
    std::fprintf(stderr, "%s\n", rule.status().ToString().c_str());
    return;
  }
  std::printf("--- %s ---\n", label);
  std::printf("metered / supplied = %.4f (technical loss target %.2f)\n",
              rule->cumulative().A(rule->n()) /
                  rule->cumulative().B(rule->n()),
              1.0 - data.params.technical_loss_fraction);

  // Daily rolling debit-model confidence, quantized to a sparkline.
  const int64_t window = data.params.ticks_per_day;
  const std::vector<double> profile =
      core::ConfidenceProfile(*rule, core::ConfidenceModel::kDebit, window);
  std::string sparkline;
  const size_t buckets = 60;
  for (size_t bucket = 0; bucket < buckets; ++bucket) {
    const size_t at = bucket * profile.size() / buckets;
    const double conf = profile[at];
    const char* glyphs = " .:-=+*#%@";
    const int level =
        std::max(0, std::min(9, static_cast<int>((conf - 0.9) * 100)));
    sparkline += glyphs[level];
  }
  std::printf("daily confidence profile (low..high):\n  [%s]\n",
              sparkline.c_str());

  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kDebit;
  request.c_hat = 0.93;
  request.s_hat = 0.05;
  auto tableau = rule->DiscoverTableau(request);
  if (tableau.ok()) {
    std::printf("fail tableau (debit, c_hat=0.93): %zu interval(s)\n",
                tableau->size());
    for (const core::TableauRow& row : tableau->rows) {
      std::printf("  %-14s conf=%.4f\n", row.interval.ToString().c_str(),
                  row.confidence);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  datagen::PowerGridParams healthy;
  Audit("healthy feeder", datagen::GeneratePowerGrid(healthy));

  datagen::PowerGridParams theft;
  theft.theft_start_tick = 960;  // day 10
  theft.theft_fraction = 0.7;
  Audit("diversion from day 10 (persistent)",
        datagen::GeneratePowerGrid(theft));

  datagen::PowerGridParams outage;
  outage.outage_begin_tick = 960;
  outage.outage_end_tick = 1152;  // two-day meter outage
  Audit("meter outage days 10-12 (transient)",
        datagen::GeneratePowerGrid(outage));

  std::printf("reading: the theft profile stays depressed from onset to the "
              "end (fail intervals run to the horizon), while the outage "
              "profile dips and recovers — the debit model discounts the "
              "already-lost mass once the meter returns.\n");
  return 0;
}
