// Network audit (paper §IV.C): scan a fleet of routers for unmonitored
// links. The debit model subtracts prior unmatched inbound traffic, so its
// fail tableau isolates routers (and time ranges) where measured outgoing
// traffic falls persistently short of incoming.
//
// Run: ./build/examples/network_audit [num_clean_routers]

#include <cstdio>
#include <cstdlib>

#include "core/conservation_rule.h"
#include "datagen/router.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const int num_clean = argc > 1 ? std::atoi(argv[1]) : 20;
  const int64_t num_ticks = 3800;

  const std::vector<datagen::RouterData> fleet =
      datagen::GenerateRouterFleet(num_clean, num_ticks, 20120402);
  std::printf("auditing %zu routers, %lld ticks each\n\n", fleet.size(),
              static_cast<long long>(num_ticks));

  io::TablePrinter flagged({"router", "fail interval", "confidence"});
  for (const datagen::RouterData& router : fleet) {
    auto rule = core::ConservationRule::Create(router.counts);
    if (!rule.ok()) {
      std::fprintf(stderr, "%s: %s\n", router.name.c_str(),
                   rule.status().ToString().c_str());
      return 1;
    }
    core::TableauRequest request;
    request.type = core::TableauType::kFail;
    request.model = core::ConfidenceModel::kDebit;
    request.c_hat = 0.5;
    request.s_hat = 0.5;
    request.epsilon = 0.01;
    auto tableau = rule->DiscoverTableau(request);
    if (!tableau.ok()) {
      std::fprintf(stderr, "%s: %s\n", router.name.c_str(),
                   tableau.status().ToString().c_str());
      return 1;
    }
    if (!tableau->support_satisfied) continue;  // healthy router
    for (const core::TableauRow& row : tableau->rows) {
      flagged.AddRow({router.name, row.interval.ToString(),
                      util::StrFormat("%.3f", row.confidence)});
    }
  }
  std::printf("routers with failing conservation (debit model, c_hat=0.5):\n");
  std::printf("%s\n", flagged.ToString().c_str());

  // Drill into Router-7: hold tableaux before/after its link activation.
  for (const datagen::RouterData& router : fleet) {
    if (router.name != "Router-7") continue;
    auto rule = core::ConservationRule::Create(router.counts);
    if (!rule.ok()) continue;
    for (const double c_hat : {0.99, 0.9}) {
      core::TableauRequest request;
      request.type = core::TableauType::kHold;
      request.model = core::ConfidenceModel::kDebit;
      request.c_hat = c_hat;
      request.s_hat = 0.04;
      request.epsilon = 0.01;
      auto tableau = rule->DiscoverTableau(request);
      if (!tableau.ok()) continue;
      std::printf("Router-7 hold tableau at c_hat=%.2f:\n%s\n", c_hat,
                  tableau->ToString().c_str());
    }
  }
  return 0;
}
