// Node diagnosis: the Figure 1 scenario of the paper. A network node with
// four links conserves traffic; then one link (the heavy exit "D") drops
// out of the monitoring system. The node-level conservation rule catches
// the imbalance, estimates the missing share, and leave-one-out diagnosis
// shows that no *observed* link explains it — the fingerprint of an
// unmonitored interface.
//
// Run: ./build/examples/node_diagnosis

#include <cstdio>

#include "core/analysis.h"
#include "network/node_monitor.h"
#include "network/simulator.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main() {
  using namespace conservation;

  const auto analyze = [](const char* label,
                          const network::NodeSimResult& sim) {
    auto node = network::NodeConservation::Create(sim.config.node_name,
                                                  sim.observed);
    if (!node.ok()) {
      std::fprintf(stderr, "%s\n", node.status().ToString().c_str());
      return;
    }
    std::printf("--- %s (%zu observed links, %lld ticks) ---\n", label,
                node->num_links(), static_cast<long long>(node->n()));
    std::printf("overall balance confidence: %.4f\n",
                node->rule()
                    .OverallConfidence(core::ConfidenceModel::kBalance)
                    .value_or(-1));
    std::printf("missing outbound fraction:  %.3f\n",
                node->MissingOutboundFraction());

    io::TablePrinter table({"link", "in share", "out share",
                            "conf without link", "impact"});
    for (const network::LinkDiagnosis& d :
         node->DiagnoseLinks(core::ConfidenceModel::kBalance)) {
      table.AddRow({d.link, util::StrFormat("%.3f", d.inbound_share),
                    util::StrFormat("%.3f", d.outbound_share),
                    util::StrFormat("%.4f", d.without_link_confidence),
                    util::StrFormat("%+.4f", d.impact)});
    }
    std::printf("%s\n", table.ToString().c_str());
  };

  // Healthy node: all four links monitored.
  network::NodeSimConfig healthy;
  healthy.node_name = "router-healthy";
  healthy.num_ticks = 2000;
  healthy.departure_weights = {1.0, 1.0, 1.0, 3.0};
  healthy.seed = 1001;
  analyze("all links monitored", network::SimulateNode(healthy));

  // Same node, but the monitoring system does not know about link D.
  network::NodeSimConfig broken = healthy;
  broken.node_name = "router-blind-to-D";
  broken.hidden_links = {3};
  analyze("link D unmonitored", network::SimulateNode(broken));

  std::printf(
      "reading: with link D hidden, about half the observed inbound "
      "traffic has no outbound counterpart. No observed link's removal "
      "repairs confidence (small impacts), so the culprit is a link the "
      "monitoring system cannot see — exactly the Figure 1 failure mode.\n");
  return 0;
}
