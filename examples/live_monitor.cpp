// Live monitoring: stream router traffic through StreamingMonitor and
// report conservation-violation episodes as they close — the online
// counterpart of fail-tableau discovery.
//
// Run: ./build/examples/live_monitor

#include <cstdio>

#include "datagen/perturb.h"
#include "datagen/router.h"
#include "stream/streaming_monitor.h"

int main() {
  using namespace conservation;

  // A well-behaved feed with a 10% outage injected (delayed recovery).
  const series::CountSequence base =
      datagen::GenerateWellBehavedTraffic(2000, 555);
  datagen::PerturbationSpec spec;
  spec.fraction = 0.1;
  spec.compensate = true;
  spec.latest_start_fraction = 0.4;
  datagen::PerturbationInfo info;
  const series::CountSequence feed =
      datagen::ApplyPerturbation(base, spec, &info);

  std::printf("simulated feed: %lld ticks; injected drop [%lld, %lld], "
              "recovery at %lld\n\n",
              static_cast<long long>(feed.n()),
              static_cast<long long>(info.drop_begin),
              static_cast<long long>(info.drop_end),
              static_cast<long long>(info.recovery_tick));

  stream::StreamOptions options;
  options.model = core::ConfidenceModel::kBalance;
  options.window = 64;
  options.alert_threshold = 0.5;
  options.clear_threshold = 0.7;
  stream::StreamingMonitor monitor(options);
  monitor.OnEpisode([](const stream::ViolationEpisode& episode) {
    std::printf("ALERT closed: ticks [%lld, %lld], min window confidence "
                "%.3f\n",
                static_cast<long long>(episode.begin),
                static_cast<long long>(episode.end),
                episode.min_confidence);
  });

  for (int64_t t = 1; t <= feed.n(); ++t) {
    monitor.Observe(feed.a(t), feed.b(t));
    if (t % 250 == 0) {
      std::printf("t=%5lld  cumulative=%.4f  window=%.4f  %s\n",
                  static_cast<long long>(t),
                  monitor.CumulativeConfidence().value_or(-1.0),
                  monitor.WindowConfidence().value_or(-1.0),
                  monitor.in_violation() ? "[IN VIOLATION]" : "");
    }
  }
  monitor.Flush();

  std::printf("\n%zu episode(s) total; the stream monitor flagged the "
              "outage within one window of its onset.\n",
              monitor.episodes().size());
  return 0;
}
