// Credit-card analysis (paper §IV.A): monthly charges vs payments under the
// balance model. Finds the months where outstanding debt piles up — holiday
// seasons — and shows that January repayments always pull confidence back up.
//
// Run: ./build/examples/credit_card_analysis [c_hat]

#include <cstdio>
#include <cstdlib>

#include "core/conservation_rule.h"
#include "datagen/credit_card.h"
#include "io/table_printer.h"
#include "util/string_util.h"
#include "io/timeline.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const double c_hat = argc > 1 ? std::atof(argv[1]) : 0.8;

  const datagen::CreditCardData data = datagen::GenerateCreditCard();
  const io::MonthTimeline timeline(data.params.start_year, 1);
  auto rule = core::ConservationRule::Create(data.counts);
  if (!rule.ok()) {
    std::fprintf(stderr, "%s\n", rule.status().ToString().c_str());
    return 1;
  }

  std::printf("NZ-style credit-card data: %lld months starting %s\n",
              static_cast<long long>(rule->n()),
              timeline.Label(1).c_str());
  std::printf("overall balance confidence: %.4f\n\n",
              *rule->OverallConfidence(core::ConfidenceModel::kBalance));

  // Fail tableau at c_hat: periods of high outstanding debt.
  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kBalance;
  request.c_hat = c_hat;
  request.s_hat = 0.04;
  request.epsilon = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  if (!tableau.ok()) {
    std::fprintf(stderr, "%s\n", tableau.status().ToString().c_str());
    return 1;
  }

  io::TablePrinter table({"months", "confidence"});
  for (const core::TableauRow& row : tableau->rows) {
    table.AddRow({timeline.LabelRange(row.interval),
                  util::StrFormat("%.3f", row.confidence)});
  }
  std::printf("fail tableau (c_hat = %.2f):\n%s\n", c_hat,
              table.ToString().c_str());

  // December vs January: charges and payments in each.
  io::TablePrinter seasonal(
      {"year", "Dec charges", "Dec payments", "Jan charges", "Jan payments"});
  for (int year = 2000; year <= 2008; ++year) {
    const int64_t dec = timeline.TickOf(year, 12);
    const int64_t jan = timeline.TickOf(year + 1, 1);
    if (dec == 0 || jan == 0 || jan > rule->n()) continue;
    seasonal.AddRow({util::StrFormat("%d", year),
                     util::StrFormat("%.0f", data.counts.b(dec)),
                     util::StrFormat("%.0f", data.counts.a(dec)),
                     util::StrFormat("%.0f", data.counts.b(jan)),
                     util::StrFormat("%.0f", data.counts.a(jan))});
  }
  std::printf("holiday seasonality:\n%s", seasonal.ToString().c_str());
  return 0;
}
