// Building monitor (paper §IV.B): people entering/exiting through a
// monitored front door, with an unmonitored side exit. The credit model
// accounts for the missing exits; its fail tableau flags the scheduled
// events whose crowds create entry/exit delay.
//
// Run: ./build/examples/building_monitor [c_hat]

#include <cstdio>
#include <cstdlib>

#include "core/conservation_rule.h"
#include "datagen/people_count.h"
#include "io/table_printer.h"
#include "util/string_util.h"
#include "io/timeline.h"

int main(int argc, char** argv) {
  using namespace conservation;

  const double c_hat = argc > 1 ? std::atof(argv[1]) : 0.6;

  const datagen::PeopleCountData data = datagen::GeneratePeopleCount();
  const io::SlotTimeline timeline(data.params.slots_per_day);
  auto rule = core::ConservationRule::Create(data.counts);
  if (!rule.ok()) {
    std::fprintf(stderr, "%s\n", rule.status().ToString().c_str());
    return 1;
  }

  const auto& cumulative = rule->cumulative();
  std::printf(
      "people-count data: %lld half-hour slots; %0.f entrances recorded, "
      "%.0f exits recorded (side exit unmonitored)\n",
      static_cast<long long>(rule->n()), cumulative.B(rule->n()),
      cumulative.A(rule->n()));
  std::printf("balance confidence of whole trace: %.4f (depressed by the "
              "side exit)\n",
              *rule->OverallConfidence(core::ConfidenceModel::kBalance));
  std::printf("credit  confidence of whole trace: %.4f\n\n",
              *rule->OverallConfidence(core::ConfidenceModel::kCredit));

  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kCredit;
  request.c_hat = c_hat;
  request.s_hat = 0.02;
  request.epsilon = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  if (!tableau.ok()) {
    std::fprintf(stderr, "%s\n", tableau.status().ToString().c_str());
    return 1;
  }

  std::printf("credit-model fail tableau (c_hat = %.2f), vs scheduled "
              "events:\n",
              c_hat);
  io::TablePrinter table({"interval", "confidence", "matching event"});
  for (const core::TableauRow& row : tableau->rows) {
    std::string matched = "-";
    for (const datagen::BuildingEvent& event : data.events) {
      const interval::Interval event_range{event.BeginTick(),
                                           event.EndTick()};
      if (row.interval.Overlaps(event_range)) {
        matched = util::StrFormat(
            "%s (%s-%s, %d people)", event.label.c_str(),
            timeline.TimeOfSlot(event.start_slot).c_str(),
            timeline.TimeOfSlot(event.end_slot).c_str(), event.attendance);
        break;
      }
    }
    table.AddRow({timeline.LabelRange(row.interval),
                  util::StrFormat("%.3f", row.confidence), matched});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
