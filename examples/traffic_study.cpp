// Traffic study: a road intersection monitored at 30-second resolution
// (the paper's road-network motivation). Demonstrates multi-resolution
// scanning — rush-hour congestion shows up only at fine resolutions (it is
// delay on the scale of minutes), while a sensor outage survives
// coarsening (it is loss) — and the delay/loss diagnosis.
//
// Run: ./build/examples/traffic_study

#include <cstdio>

#include "core/diagnose.h"
#include "core/multi_resolution.h"
#include "datagen/intersection.h"
#include "io/table_printer.h"
#include "util/string_util.h"

namespace {

using namespace conservation;

void Scan(const char* label, const series::CountSequence& counts) {
  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kBalance;
  request.c_hat = 0.7;
  request.s_hat = 0.01;
  auto scan = core::MultiResolutionScan(counts, request, {1, 8, 64, 512});
  if (!scan.ok()) {
    std::fprintf(stderr, "%s\n", scan.status().ToString().c_str());
    return;
  }
  std::printf("--- %s ---\n", label);
  io::TablePrinter table({"ticks/bucket", "overall conf", "fail intervals",
                          "native ticks covered"});
  for (const core::ResolutionResult& result : *scan) {
    table.AddRow({util::StrFormat("%lld", static_cast<long long>(result.factor)),
                  util::StrFormat("%.4f", result.overall_confidence),
                  util::StrFormat("%zu", result.native_intervals.size()),
                  util::StrFormat("%lld", static_cast<long long>(
                                              result.covered_native_ticks))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  // A normal day: two rush hours, no sensor faults.
  const datagen::IntersectionData normal = datagen::GenerateIntersection();
  std::printf("intersection, %lld ticks (30 s each); rush windows:",
              static_cast<long long>(normal.counts.n()));
  for (const auto& [begin, end] : normal.rush_windows) {
    std::printf(" [%lld, %lld]", static_cast<long long>(begin),
                static_cast<long long>(end));
  }
  std::printf("\n\n");
  Scan("normal day (congestion only)", normal.counts);

  // Same day with an exit-sensor outage over ~100 minutes.
  datagen::IntersectionParams faulty;
  faulty.outage_begin_tick = 1200;
  faulty.outage_end_tick = 1400;
  const datagen::IntersectionData outage =
      datagen::GenerateIntersection(faulty);
  Scan("day with an exit-sensor outage [1200, 1400]", outage.counts);

  // Diagnose the two phenomena.
  const series::CumulativeSeries cumulative(outage.counts);
  const auto rush = core::DiagnoseViolation(
      cumulative, {outage.rush_windows[0].first,
                   outage.rush_windows[0].second});
  const auto fault = core::DiagnoseViolation(cumulative, {1200, 1400});
  std::printf("diagnosis:\n  rush window:  %s\n  outage range: %s\n\n",
              rush.ToString().c_str(), fault.ToString().c_str());
  std::printf(
      "reading: congestion is delay (cars exit late; it vanishes when the "
      "data is coarsened past the transit time), the sensor outage is loss "
      "(the missing exits never appear, at any resolution).\n");
  return 0;
}
