// Quickstart: the paper's Figure 2 example end to end.
//
// Builds a conservation rule from tiny inbound/outbound sequences, computes
// the three confidence models on the interval [2, 4], inspects the implied
// event matching, and discovers a fail tableau.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "core/conservation_rule.h"
#include "matching/rightward_matching.h"

int main() {
  using namespace conservation;

  // Outbound ("-out" events per tick) and inbound ("-in" events per tick)
  // counts from Figure 2 of the paper.
  const std::vector<double> outbound = {2, 0, 1, 1, 2};
  const std::vector<double> inbound = {3, 1, 1, 2, 0};

  auto rule = core::ConservationRule::Create(outbound, inbound);
  if (!rule.ok()) {
    std::fprintf(stderr, "failed to build rule: %s\n",
                 rule.status().ToString().c_str());
    return 1;
  }

  std::printf("n = %lld ticks\n", static_cast<long long>(rule->n()));
  std::printf("cumulative curves:\n  A:");
  for (int64_t l = 0; l <= rule->n(); ++l) {
    std::printf(" %.0f", rule->cumulative().A(l));
  }
  std::printf("\n  B:");
  for (int64_t l = 0; l <= rule->n(); ++l) {
    std::printf(" %.0f", rule->cumulative().B(l));
  }
  std::printf("\n\n");

  // Confidence of the interval [2, 4] under each model (paper §II computes
  // 3/10, 6/10 and 3/7 for these).
  const struct {
    core::ConfidenceModel model;
    const char* name;
  } kModels[] = {
      {core::ConfidenceModel::kBalance, "balance"},
      {core::ConfidenceModel::kCredit, "credit"},
      {core::ConfidenceModel::kDebit, "debit"},
  };
  for (const auto& m : kModels) {
    const auto conf = rule->Confidence(m.model, 2, 4);
    std::printf("conf_%s([2,4]) = %.4f\n", m.name,
                conf.has_value() ? *conf : -1.0);
  }

  // Delay metrics (Lemma 2): total delay = sum(B_l - A_l).
  const core::DelayReport delay = rule->Delay();
  std::printf("\ntotal delay = %.0f ticks, per inbound event = %.3f\n",
              delay.total_delay, delay.delay_per_event);

  // An explicit rightward matching exists once the trailing unmatched
  // inbound event is dropped (Lemma 1 needs A_n = B_n).
  auto balanced =
      series::CountSequence::Create({2, 0, 1, 1, 2}, {3, 1, 1, 1, 0});
  auto matching = matching::BuildRightwardMatching(
      *balanced, matching::MatchPolicy::kFifo);
  if (matching.ok()) {
    std::printf("\nFIFO rightward matching (delay %.0f):\n",
                matching::MatchingDelay(*matching));
    for (const auto& group : *matching) {
      std::printf("  %.0f event(s): in@%lld -> out@%lld\n", group.count,
                  static_cast<long long>(group.inbound_time),
                  static_cast<long long>(group.outbound_time));
    }
  }

  // Discover a fail tableau: intervals of balance confidence <= 0.5
  // covering at least 40% of the ticks.
  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kBalance;
  request.c_hat = 0.5;
  request.s_hat = 0.4;
  request.epsilon = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  if (!tableau.ok()) {
    std::fprintf(stderr, "tableau discovery failed: %s\n",
                 tableau.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", tableau->ToString().c_str());
  return 0;
}
